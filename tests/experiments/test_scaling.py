"""Tests for the multi-core ``scaling`` experiment (spec, runner, CLI, cache)."""

import pytest

from repro.__main__ import main
from repro.experiments.figures import (
    SCALING_ENGINE,
    SCALING_SMOKE_STRATEGIES,
    SCALING_SMOKE_TOPOLOGIES,
    SCALING_SPEC_VERSION,
    SCALING_TOPOLOGIES,
    scaling_spec,
)
from repro.experiments.registry import get_experiment
from repro.experiments.runner import run_named
from repro.workloads.sweeps import SCALING_CORES, SCALING_SMOKE_CORES

#: A single cheap workload for runner-level tests.
TINY_WORKLOADS = [
    {
        "name": "gemm-tiny",
        "kind": "gemm",
        "m": 64, "n": 64, "k": 256,
        "pattern": "4:4",
        "machine": None,  # replaced in fixture below
    }
]


@pytest.fixture
def tiny_workloads():
    from repro.cpu.params import default_machine

    workload = dict(TINY_WORKLOADS[0])
    workload["machine"] = default_machine().to_dict()
    return [workload]


class TestSpec:
    def test_registered(self):
        experiment = get_experiment("scaling")
        assert "scaling" in experiment.name
        assert experiment.reduce is None

    def test_full_spec_axes(self):
        spec = scaling_spec()
        assert spec.version == SCALING_SPEC_VERSION
        assert [w["name"] for w in spec.axes["workload"]] == [
            "gemm-compute", "gemm-membound", "spmm-2:4", "spgemm-2:4",
        ]
        assert tuple(spec.axes["cores"]) == SCALING_CORES
        assert tuple(spec.axes["topology"]) == SCALING_TOPOLOGIES
        assert spec.num_trials == 4 * len(SCALING_CORES) * 3 * len(SCALING_TOPOLOGIES)

    def test_smoke_options_shrink_the_sweep(self):
        spec = get_experiment("scaling").build({"smoke": True})
        assert tuple(spec.axes["cores"]) == SCALING_SMOKE_CORES
        assert tuple(spec.axes["strategy"]) == SCALING_SMOKE_STRATEGIES
        assert tuple(spec.axes["topology"]) == SCALING_SMOKE_TOPOLOGIES
        assert spec.fixed["engine"] == SCALING_ENGINE

    def test_spec_is_plain_data(self):
        # Everything must survive the canonical-JSON round trip for caching.
        spec = scaling_spec()
        for trial in spec.trials()[:3]:
            assert spec.cache_key(trial)


class TestRunner:
    def test_single_workload_sweep(self, tiny_workloads):
        table = run_named(
            "scaling",
            {
                "workloads": tiny_workloads,
                "cores": [1, 2],
                "strategies": ["row-block"],
                "topologies": ["flat"],
            },
            cache=False,
        )
        assert len(table) == 2
        by_cores = {row["cores"]: row for row in table.rows}
        assert by_cores[1]["single_core_match"] is True
        assert by_cores[1]["speedup"] == 1.0
        assert by_cores[2]["single_core_match"] is None
        assert 1.0 < by_cores[2]["speedup"] <= 2.0
        assert by_cores[2]["efficiency"] == by_cores[2]["speedup"] / 2
        for row in table.rows:
            assert row["topology"] == "flat"
            assert row["numa_penalty"] == 1.0
            assert row["interconnect_utilization"] is None

    def test_topology_axis(self, tiny_workloads):
        table = run_named(
            "scaling",
            {
                "workloads": tiny_workloads,
                "cores": [4],
                "strategies": ["row-block"],
                "topologies": ["flat", "dual-socket", "chiplet"],
            },
            cache=False,
        )
        assert len(table) == 3
        by_topology = {row["topology"]: row for row in table.rows}
        assert set(by_topology) == {"flat", "dual-socket", "chiplet"}
        for name in ("dual-socket", "chiplet"):
            row = by_topology[name]
            assert row["numa_penalty"] > 0.0
            assert row["interconnect_utilization"] is not None
            assert row["l3_utilization"] is not None
            assert row["dram_utilization"] is not None

    def test_results_are_cached(self, tiny_workloads, tmp_path):
        options = {
            "workloads": tiny_workloads,
            "cores": [1],
            "strategies": ["row-block"],
            "topologies": ["flat"],
        }
        first = run_named("scaling", options, cache_root=tmp_path)
        assert first.meta["executed"] == 1
        second = run_named("scaling", options, cache_root=tmp_path)
        assert second.meta["cached"] == 1
        assert second.rows == first.rows


class TestCli:
    def test_run_scaling_smoke(self, capsys, tmp_path):
        argv = [
            "run", "scaling", "--smoke",
            "--cache-dir", str(tmp_path / "cache"),
            "--format", "csv",
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        assert lines[0].startswith("workload,kind,cores,strategy,core_cycles")
        # 4 workloads x 2 core counts x 1 strategy x 2 topologies.
        assert len(lines) == 1 + 16
        rows = [dict(zip(lines[0].split(","), line.split(","))) for line in lines[1:]]
        for row in rows:
            if row["cores"] == "1":
                # The single-core invariant holds under every smoke topology.
                assert row["single_core_match"] == "True"
        membound_8 = next(
            r
            for r in rows
            if r["workload"] == "gemm-membound"
            and r["cores"] == "8"
            and r["topology"] == "flat"
        )
        compute_8 = next(
            r
            for r in rows
            if r["workload"] == "gemm-compute"
            and r["cores"] == "8"
            and r["topology"] == "flat"
        )
        # The acceptance-criteria shape: bandwidth-limited vs compute-bound.
        assert membound_8["contended"] == "True"
        assert float(membound_8["speedup"]) < 4.0
        assert float(compute_8["speedup"]) >= 6.0
        # The NUMA story: the dual-socket machine's second memory channel
        # relieves the membound bottleneck (penalty < 1), and its socket
        # links saturate where the flat pool's DRAM did.
        membound_numa = next(
            r
            for r in rows
            if r["workload"] == "gemm-membound"
            and r["cores"] == "8"
            and r["topology"] == "dual-socket"
        )
        assert float(membound_numa["numa_penalty"]) < 1.0
        assert float(membound_numa["interconnect_utilization"]) > 0.9

    def test_run_scaling_topology_flag(self, capsys, tmp_path):
        argv = [
            "run", "scaling", "--smoke",
            "--topology", "chiplet",
            "--cores", "1,8",
            "--cache-dir", str(tmp_path / "cache"),
            "--format", "csv",
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        rows = [dict(zip(lines[0].split(","), line.split(","))) for line in lines[1:]]
        assert len(rows) == 8
        assert {row["topology"] for row in rows} == {"chiplet"}
        for row in rows:
            if row["cores"] == "1":
                assert row["single_core_match"] == "True"

    def test_scaling_listed(self, capsys):
        assert main(["list"]) == 0
        assert "scaling" in capsys.readouterr().out
