"""Tests for the multi-core ``scaling`` experiment (spec, runner, CLI, cache)."""

import pytest

from repro.__main__ import main
from repro.experiments.figures import (
    SCALING_ENGINE,
    SCALING_SMOKE_STRATEGIES,
    SCALING_SPEC_VERSION,
    scaling_spec,
)
from repro.experiments.registry import get_experiment
from repro.experiments.runner import run_named
from repro.workloads.sweeps import SCALING_CORES, SCALING_SMOKE_CORES

#: A single cheap workload for runner-level tests.
TINY_WORKLOADS = [
    {
        "name": "gemm-tiny",
        "kind": "gemm",
        "m": 64, "n": 64, "k": 256,
        "pattern": "4:4",
        "machine": None,  # replaced in fixture below
    }
]


@pytest.fixture
def tiny_workloads():
    from repro.cpu.params import default_machine

    workload = dict(TINY_WORKLOADS[0])
    workload["machine"] = default_machine().to_dict()
    return [workload]


class TestSpec:
    def test_registered(self):
        experiment = get_experiment("scaling")
        assert "scaling" in experiment.name
        assert experiment.reduce is None

    def test_full_spec_axes(self):
        spec = scaling_spec()
        assert spec.version == SCALING_SPEC_VERSION
        assert [w["name"] for w in spec.axes["workload"]] == [
            "gemm-compute", "gemm-membound", "spmm-2:4", "spgemm-2:4",
        ]
        assert tuple(spec.axes["cores"]) == SCALING_CORES
        assert spec.num_trials == 4 * len(SCALING_CORES) * 3

    def test_smoke_options_shrink_the_sweep(self):
        spec = get_experiment("scaling").build({"smoke": True})
        assert tuple(spec.axes["cores"]) == SCALING_SMOKE_CORES
        assert tuple(spec.axes["strategy"]) == SCALING_SMOKE_STRATEGIES
        assert spec.fixed["engine"] == SCALING_ENGINE

    def test_spec_is_plain_data(self):
        # Everything must survive the canonical-JSON round trip for caching.
        spec = scaling_spec()
        for trial in spec.trials()[:3]:
            assert spec.cache_key(trial)


class TestRunner:
    def test_single_workload_sweep(self, tiny_workloads):
        table = run_named(
            "scaling",
            {"workloads": tiny_workloads, "cores": [1, 2], "strategies": ["row-block"]},
            cache=False,
        )
        assert len(table) == 2
        by_cores = {row["cores"]: row for row in table.rows}
        assert by_cores[1]["single_core_match"] is True
        assert by_cores[1]["speedup"] == 1.0
        assert by_cores[2]["single_core_match"] is None
        assert 1.0 < by_cores[2]["speedup"] <= 2.0
        assert by_cores[2]["efficiency"] == by_cores[2]["speedup"] / 2

    def test_results_are_cached(self, tiny_workloads, tmp_path):
        options = {
            "workloads": tiny_workloads,
            "cores": [1],
            "strategies": ["row-block"],
        }
        first = run_named("scaling", options, cache_root=tmp_path)
        assert first.meta["executed"] == 1
        second = run_named("scaling", options, cache_root=tmp_path)
        assert second.meta["cached"] == 1
        assert second.rows == first.rows


class TestCli:
    def test_run_scaling_smoke(self, capsys, tmp_path):
        argv = [
            "run", "scaling", "--smoke",
            "--cache-dir", str(tmp_path / "cache"),
            "--format", "csv",
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        assert lines[0].startswith("workload,kind,cores,strategy,core_cycles")
        # 4 workloads x 2 core counts x 1 strategy.
        assert len(lines) == 1 + 8
        rows = [dict(zip(lines[0].split(","), line.split(","))) for line in lines[1:]]
        for row in rows:
            if row["cores"] == "1":
                assert row["single_core_match"] == "True"
        membound_8 = next(
            r for r in rows if r["workload"] == "gemm-membound" and r["cores"] == "8"
        )
        compute_8 = next(
            r for r in rows if r["workload"] == "gemm-compute" and r["cores"] == "8"
        )
        # The acceptance-criteria shape: bandwidth-limited vs compute-bound.
        assert membound_8["contended"] == "True"
        assert float(membound_8["speedup"]) < 4.0
        assert float(compute_8["speedup"]) >= 6.0

    def test_scaling_listed(self, capsys):
        assert main(["list"]) == 0
        assert "scaling" in capsys.readouterr().out
