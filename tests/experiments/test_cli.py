"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def test_list_names_every_builtin_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig13", "fig15", "roofline", "area-power", "headline"):
        assert name in out


def test_run_area_power_table(capsys, cache_dir):
    assert main(["run", "area-power", "--cache-dir", cache_dir]) == 0
    captured = capsys.readouterr()
    assert "VEGETA-S-16-2" in captured.out
    assert "8 trials" in captured.err


def test_run_fig13_scaled_down_parallel(capsys, cache_dir):
    argv = [
        "run", "fig13",
        "--max-layers", "1",
        "--max-output-tiles", "1",
        "--jobs", "2",
        "--cache-dir", cache_dir,
        "--format", "csv",
    ]
    assert main(argv) == 0
    captured = capsys.readouterr()
    lines = captured.out.strip().splitlines()
    assert lines[0].startswith("layer,pattern,engine,core_cycles_scaled")
    assert len(lines) == 1 + 30  # 1 layer x 3 patterns x 10 engines
    assert "30 executed" in captured.err

    # Second invocation is served entirely from the cache.
    assert main(argv) == 0
    captured = capsys.readouterr()
    assert "30 cached, 0 executed" in captured.err


def test_dump_emits_json(capsys, cache_dir):
    assert main(["dump", "roofline", "--cache-dir", cache_dir]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["columns"][0] == "engine"
    assert len(payload["rows"]) == 4 * 50


def test_out_writes_file(tmp_path, capsys, cache_dir):
    out_file = tmp_path / "table.json"
    assert main(
        ["dump", "area-power", "--cache-dir", cache_dir, "--out", str(out_file)]
    ) == 0
    payload = json.loads(out_file.read_text())
    assert len(payload["rows"]) == 8


def test_no_cache_leaves_cache_dir_empty(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["run", "area-power", "--no-cache", "--cache-dir", str(cache)]) == 0
    assert not cache.exists()


def test_cache_info_and_clear(capsys, cache_dir):
    main(["run", "area-power", "--cache-dir", cache_dir])
    capsys.readouterr()
    assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
    assert "entries:     8" in capsys.readouterr().out
    assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
    assert "removed 8" in capsys.readouterr().out


def test_unknown_experiment_is_an_error(capsys, cache_dir):
    assert main(["run", "no-such-figure", "--cache-dir", cache_dir]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_dump_unknown_experiment_is_an_error(capsys, cache_dir):
    # Same contract for dump: exit non-zero with a clear message, no traceback.
    assert main(["dump", "no-such-figure", "--cache-dir", cache_dir]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err
    assert "Traceback" not in err


def test_cache_clear_on_missing_directory_succeeds(tmp_path, capsys):
    missing = tmp_path / "never-created"
    assert main(["cache", "clear", "--cache-dir", str(missing)]) == 0
    assert "removed 0" in capsys.readouterr().out


def test_cache_info_on_missing_directory_succeeds(tmp_path, capsys):
    missing = tmp_path / "never-created"
    assert main(["cache", "info", "--cache-dir", str(missing)]) == 0
    assert "entries:     0" in capsys.readouterr().out


def test_run_spgemm_smoke(capsys, cache_dir):
    argv = ["run", "spgemm", "--smoke", "--cache-dir", cache_dir, "--format", "csv"]
    assert main(argv) == 0
    captured = capsys.readouterr()
    lines = captured.out.strip().splitlines()
    assert lines[0].startswith("m,n,k,pattern_a,pattern_b,joint_pattern")
    assert len(lines) == 1 + 4  # 1 smoke shape x 2 A patterns x 2 B patterns
    # Acceptance: the validated sweep points prove fast == exact bit-for-bit
    # and the functional result matches the sparse reference product.
    header = lines[0].split(",")
    for line in lines[1:]:
        row = dict(zip(header, line.split(",")))
        assert row["exact_match"] == "True"
        assert row["functional_match"] == "True"
        assert float(row["speedup_vs_dense"]) > 1.0

    # Second invocation is served entirely from the cache.
    assert main(argv) == 0
    captured = capsys.readouterr()
    assert "4 cached, 0 executed" in captured.err


def test_bench_writes_payload(tmp_path, capsys):
    out = tmp_path / "BENCH_simulator.json"
    assert main(["bench", "--quick", "--out", str(out)]) == 0
    captured = capsys.readouterr()
    assert "speedup" in captured.out
    payload = json.loads(out.read_text())
    assert payload["workloads"], "bench must record at least one workload"
    row = payload["workloads"][0]
    assert row["fast_core_cycles"] == pytest.approx(row["exact_core_cycles"], rel=0.01)
    assert payload["speedup_min"] > 1.0
    assert payload["fast_ops_per_sec"] > payload["exact_ops_per_sec"]


def test_bench_rejects_bad_shape(capsys):
    assert main(["bench", "--shape", "12x34"]) == 2
    assert "error" in capsys.readouterr().err


def test_engines_lists_catalog_with_geometry_columns(capsys):
    assert main(["engines"]) == 0
    out = capsys.readouterr().out
    for name in ("VEGETA-D-1-2", "VEGETA-S-16-2", "AMX-like", "SME-like"):
        assert name in out
    # Geometry columns: the default 16x64 B tile next to SME's 32x128 B one.
    assert "16x64B" in out
    assert "32x128B" in out
    assert "4096" in out  # the SME tile register image


class TestCoresValidation:
    """--cores comma lists are validated up front, naming the bad value."""

    def test_non_integer_rejected(self, capsys, cache_dir):
        argv = ["run", "scaling", "--cores", "1,two", "--cache-dir", cache_dir]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "comma-separated integer list" in err
        assert "'two'" in err

    def test_zero_rejected(self, capsys, cache_dir):
        argv = ["run", "scaling", "--cores", "0,2", "--cache-dir", cache_dir]
        assert main(argv) == 2
        assert "must be positive core counts, got 0" in capsys.readouterr().err

    def test_negative_rejected(self, capsys, cache_dir):
        argv = ["run", "scaling", "--cores", "4,-8", "--cache-dir", cache_dir]
        assert main(argv) == 2
        assert "must be positive core counts, got -8" in capsys.readouterr().err

    def test_duplicate_rejected(self, capsys, cache_dir):
        argv = ["run", "scaling", "--cores", "2,4,2", "--cache-dir", cache_dir]
        assert main(argv) == 2
        assert "must be unique, got 2 twice" in capsys.readouterr().err

    def test_empty_list_rejected(self, capsys, cache_dir):
        argv = ["run", "scaling", "--cores", ",", "--cache-dir", cache_dir]
        assert main(argv) == 2
        assert "at least one core count" in capsys.readouterr().err


class TestAxisOptionGating:
    """--topology/--cores are rejected for experiments without those axes."""

    def test_topology_rejected_for_experiment_without_axis(self, capsys, cache_dir):
        argv = ["run", "fig13", "--topology", "flat", "--cache-dir", cache_dir]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "--topology is only valid for experiments with a topology axis" in err
        assert "not 'fig13'" in err

    def test_cores_rejected_for_experiment_without_axis(self, capsys, cache_dir):
        argv = ["run", "area-power", "--cores", "2,4", "--cache-dir", cache_dir]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "--cores is only valid for experiments with a core-count axis" in err

    def test_error_names_the_experiments_that_do_support_the_flag(
        self, capsys, cache_dir
    ):
        argv = ["run", "fig13", "--cores", "2", "--cache-dir", cache_dir]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "autotune" in err and "scaling" in err

    def test_scaling_still_accepts_both_flags(self, capsys, cache_dir):
        argv = [
            "run", "scaling",
            "--smoke",
            "--topology", "flat",
            "--cores", "1,2",
            "--cache-dir", cache_dir,
            "--format", "csv",
        ]
        assert main(argv) == 0


def test_run_autotune_smoke_restricted(capsys, cache_dir):
    argv = [
        "run", "autotune",
        "--smoke",
        "--cores", "1,2",
        "--topology", "flat",
        "--cache-dir", cache_dir,
        "--format", "csv",
    ]
    assert main(argv) == 0
    captured = capsys.readouterr()
    lines = captured.out.strip().splitlines()
    header = lines[0].split(",")
    for column in ("bound_cycles", "on_frontier", "best", "prune_ratio"):
        assert column in header
    rows = [dict(zip(header, line.split(","))) for line in lines[1:]]
    # One exploded row per candidate: 11 engines x {1,2} cores x 3
    # strategies x flat, minus the collapsed equivalents.
    assert len(rows) == 44
    assert all(row["workload"] == "sparse-2:4" for row in rows)
    # Exactly one best mapping, and it sits on the frontier of the
    # simulated candidates.
    best = [row for row in rows if row["best"] == "True"]
    assert len(best) == 1
    assert best[0]["on_frontier"] == "True"
    assert best[0]["simulated"] == "True"
    # Pruning still pays for itself on the restricted space.
    assert float(rows[0]["prune_ratio"]) >= 5.0
    # Sound bounds: no simulated row undercuts its analytic floor.
    for row in rows:
        if row["simulated"] == "True":
            assert int(row["bound_cycles"]) <= int(row["cycles"])

    # Second invocation is served entirely from the cache.
    assert main(argv) == 0
    captured = capsys.readouterr()
    assert "1 cached, 0 executed" in captured.err


def test_plan_prints_best_mapping_per_workload(capsys, cache_dir):
    argv = [
        "plan",
        "--workload", "sparse-2:4",
        "--cores", "1,2",
        "--topology", "flat",
        "--cache-dir", cache_dir,
    ]
    assert main(argv) == 0
    captured = capsys.readouterr()
    out = captured.out
    assert "best mapping per workload" in out
    assert "sparse-2:4" in out
    assert "prune" in out
    assert "1 workloads" in captured.err


def test_plan_rejects_unknown_workload(capsys, cache_dir):
    argv = ["plan", "--workload", "no-such-workload", "--cache-dir", cache_dir]
    assert main(argv) == 2
    assert "unknown autotune workload" in capsys.readouterr().err


class TestResilienceCli:
    """--max-retries / --trial-timeout / --resume and the failure exit code."""

    def test_permanent_failure_exits_1_naming_the_trial(
        self, monkeypatch, capsys, cache_dir
    ):
        monkeypatch.setenv("REPRO_FAULTS", "trial-error:trials=0")
        assert main(["run", "area-power", "--cache-dir", cache_dir]) == 1
        err = capsys.readouterr().err
        assert "trial 0" in err
        assert "failed permanently" in err
        assert "--resume" in err

    def test_max_retries_recovers_from_transient_fault(
        self, monkeypatch, capsys, cache_dir
    ):
        monkeypatch.setenv("REPRO_FAULTS", "trial-error:trials=0")
        argv = ["run", "area-power", "--max-retries", "1", "--cache-dir", cache_dir]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "1 retried" in captured.err
        assert "8 trials" in captured.err

    def test_resume_completes_after_a_failed_run(
        self, monkeypatch, capsys, cache_dir
    ):
        monkeypatch.setenv("REPRO_FAULTS", "trial-error:trials=0")
        assert main(["run", "area-power", "--cache-dir", cache_dir]) == 1
        monkeypatch.delenv("REPRO_FAULTS")
        capsys.readouterr()
        argv = ["run", "area-power", "--resume", "--cache-dir", cache_dir]
        assert main(argv) == 0
        # The 7 rows checkpointed by the failed run are served back; only
        # the offender re-runs.
        assert "7 cached, 1 executed" in capsys.readouterr().err

    def test_resume_without_cache_is_rejected(self, capsys, cache_dir):
        argv = ["run", "area-power", "--resume", "--no-cache"]
        assert main(argv) == 2
        assert "--resume" in capsys.readouterr().err


def test_cache_info_reports_store_integrity(capsys, cache_dir):
    main(["run", "area-power", "--cache-dir", cache_dir])
    capsys.readouterr()
    assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "integrity:   8 verified, 0 quarantined now, 0 in quarantine" in out
    assert "area-power (results): 8 verified, 0 quarantined" in out

    # Corrupt one entry: info quarantines it and says so.
    from pathlib import Path

    victim = sorted(Path(cache_dir).rglob("*.json"))[0]
    victim.write_text("torn write")
    assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "integrity:   7 verified, 1 quarantined now, 1 in quarantine" in out

    # The next pass finds a clean store with the evidence in quarantine.
    assert main(["cache", "info", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "integrity:   7 verified, 0 quarantined now, 1 in quarantine" in out


def test_run_backends_smoke_produces_four_engine_table(capsys, cache_dir):
    argv = [
        "run", "backends",
        "--smoke",
        "--max-output-tiles", "2",
        "--cache-dir", cache_dir,
        "--format", "csv",
    ]
    assert main(argv) == 0
    captured = capsys.readouterr()
    lines = captured.out.strip().splitlines()
    header = lines[0].split(",")
    assert "speedup_vs_baseline" in header
    engines = {line.split(",")[header.index("engine")] for line in lines[1:]}
    assert engines == {
        "VEGETA-S-16-2+OF",
        "VEGETA-S-16-2+OF+SPGEMM",
        "AMX-like",
        "SME-like",
    }
