"""Tests for the declarative experiment spec model."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.spec import ExperimentSpec, Trial, canonical_json


def make_spec(**overrides):
    kwargs = dict(
        name="demo",
        version="1",
        axes={"a": [1, 2], "b": ["x", "y", "z"]},
        fixed={"c": 7},
    )
    kwargs.update(overrides)
    return ExperimentSpec(**kwargs)


class TestExpansion:
    def test_cross_product_size_and_order(self):
        spec = make_spec()
        trials = spec.trials()
        assert len(trials) == spec.num_trials == 6
        # Last axis varies fastest; indices follow expansion order.
        assert [t.params["a"] for t in trials] == [1, 1, 1, 2, 2, 2]
        assert [t.params["b"] for t in trials] == ["x", "y", "z"] * 2
        assert [t.index for t in trials] == list(range(6))

    def test_fixed_params_merged_into_every_trial(self):
        assert all(t.params["c"] == 7 for t in make_spec().trials())

    def test_axis_value_overrides_nothing(self):
        with pytest.raises(ConfigurationError):
            make_spec(fixed={"a": 9})

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            make_spec(axes={"a": []})

    def test_no_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            make_spec(axes={})

    def test_non_json_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            make_spec(fixed={"c": object()})


class TestCacheKeys:
    def test_key_is_stable_across_expansions(self):
        first = make_spec()
        second = make_spec()
        for a, b in zip(first.trials(), second.trials()):
            assert first.cache_key(a) == second.cache_key(b)

    def test_key_ignores_dict_insertion_order(self):
        spec = make_spec()
        forward = Trial(experiment="demo", index=0, params={"a": 1, "b": "x", "c": 7})
        backward = Trial(experiment="demo", index=0, params={"c": 7, "b": "x", "a": 1})
        assert spec.cache_key(forward) == spec.cache_key(backward)

    def test_key_depends_on_params_version_and_name(self):
        spec = make_spec()
        trials = spec.trials()
        assert spec.cache_key(trials[0]) != spec.cache_key(trials[1])
        bumped = make_spec(version="2")
        assert spec.cache_key(trials[0]) != bumped.cache_key(trials[0])
        renamed = make_spec(name="other")
        assert spec.cache_key(trials[0]) != renamed.cache_key(trials[0])

    def test_key_looks_like_sha256(self):
        spec = make_spec()
        key = spec.cache_key(spec.trials()[0])
        assert len(key) == 64 and int(key, 16) >= 0


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_rejects_unserializable(self):
        with pytest.raises(ConfigurationError):
            canonical_json({"a": object()})
