"""Tests for the built-in figure experiments and their analysis-layer parity."""

import pytest

from repro.analysis.granularity import figure15_series
from repro.analysis.roofline import figure3_series
from repro.analysis.runtime import figure13_experiment, simulate_layer, resolve_engine
from repro.cpu.params import MachineParams
from repro.experiments.cache import ResultCache
from repro.experiments.figures import figure13_spec, figure15_spec
from repro.experiments.runner import run_experiment, run_named
from repro.types import SparsityPattern
from repro.workloads.layers import get_layer


class TestMachineParamsCodec:
    def test_round_trip(self):
        machine = MachineParams()
        clone = MachineParams.from_dict(machine.to_dict())
        assert clone == machine

    def test_dict_is_plain_data(self):
        import json

        json.dumps(MachineParams().to_dict())


class TestFig13:
    def test_trial_matches_direct_simulation(self, tmp_path):
        layer = get_layer("GPT-L1")
        pattern = SparsityPattern.SPARSE_2_4
        engine_name = "VEGETA-S-16-2"
        direct = simulate_layer(
            layer, pattern, resolve_engine(engine_name), max_output_tiles=1
        )
        table = run_experiment(
            figure13_spec(
                layers=[layer],
                engine_names=(engine_name,),
                patterns=(pattern,),
                max_output_tiles=1,
            ),
            cache=ResultCache(tmp_path),
        )
        row = table.rows[0]
        assert row["core_cycles_scaled"] == direct.core_cycles_scaled
        assert row["simulated_fraction"] == direct.simulated_fraction
        assert row["core_cycles"] == direct.result.core_cycles

    def test_figure13_experiment_rehydrates_layer_runtimes(self, tmp_path):
        results = figure13_experiment(
            layers=[get_layer("GPT-L1")],
            engine_names=("VEGETA-D-1-2",),
            patterns=(SparsityPattern.DENSE_4_4,),
            max_output_tiles=1,
            cache=ResultCache(tmp_path),
        )
        assert len(results) == 1
        point = results[0]
        assert point.pattern is SparsityPattern.DENSE_4_4
        assert point.result is None
        assert point.runtime_seconds > 0

    def test_custom_machine_changes_cache_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        layer = get_layer("GPT-L1")
        common = dict(
            layers=[layer],
            engine_names=("VEGETA-D-1-2",),
            patterns=(SparsityPattern.DENSE_4_4,),
            max_output_tiles=1,
        )
        default_spec = figure13_spec(**common)
        explicit_default_spec = figure13_spec(machine=MachineParams(), **common)
        run_experiment(default_spec, cache=cache)
        table = run_experiment(explicit_default_spec, cache=cache)
        # The default machine is resolved into the key, so spelling it out
        # explicitly addresses the *same* entry (editing default_machine()
        # must invalidate, not silently reuse, cached rows).
        assert table.meta["executed"] == 0 and table.meta["cached"] == 1
        import dataclasses

        other_machine = MachineParams(
            core=dataclasses.replace(MachineParams().core, rob_entries=32)
        )
        other_spec = figure13_spec(machine=other_machine, **common)
        table = run_experiment(other_spec, cache=cache)
        assert table.meta["executed"] == 1


class TestFig15:
    def test_series_matches_subsystem_rows(self, tmp_path):
        cache = ResultCache(tmp_path)
        degrees = [0.9]
        layers = [get_layer("BERT-L1"), get_layer("BERT-L2")]
        points = figure15_series(
            degrees, layers=layers, max_weight_elements=1 << 14, cache=cache
        )
        table = run_experiment(
            figure15_spec(degrees, layers=layers, max_weight_elements=1 << 14),
            cache=cache,
        )
        averaged = sum(row["row_wise"] for row in table.rows) / len(table.rows)
        assert points[0].speedups["row_wise"] == pytest.approx(averaged)

    def test_per_layer_seeds_follow_layer_position(self):
        spec = figure15_spec([0.9], layers=["BERT-L1", "BERT-L2"], seed=5)
        seeds = [value["seed"] for value in spec.axes["layer"]]
        assert seeds == [5, 6]

    def test_duplicate_degrees_average_independently(self):
        layers = [get_layer("BERT-L1"), get_layer("BERT-L2")]
        dup = figure15_series(
            [0.5, 0.5], layers=layers, max_weight_elements=1 << 14, cache=False
        )
        single = figure15_series(
            [0.5], layers=layers, max_weight_elements=1 << 14, cache=False
        )
        assert dup[0].speedups == single[0].speedups
        assert dup[1].speedups == single[0].speedups


class TestFig3:
    def test_series_round_trips_through_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = figure3_series([0.1, 0.5, 1.0], cache=cache)
        warm = figure3_series([0.1, 0.5, 1.0], cache=cache)
        assert warm == cold
        assert set(warm) == {
            "density_percent",
            "dense_vector",
            "sparse_vector",
            "dense_matrix",
            "sparse_matrix",
        }
        assert all(len(series) == 3 for series in warm.values())


class TestHeadlineExperiment:
    def test_reduce_produces_one_row_per_sparsity_class(self, tmp_path):
        table = run_named(
            "headline",
            {"max_layers": 1, "max_output_tiles": 1},
            cache=ResultCache(tmp_path),
        )
        assert table.columns == ("sparsity", "paper", "speedup")
        assert [row["sparsity"] for row in table.rows] == [
            "4:4",
            "2:4",
            "1:4",
            "unstructured-95%",
        ]
        assert all(row["speedup"] > 0 for row in table.rows)

    def test_non_canonical_engine_spellings_accepted(self, tmp_path):
        table = run_named(
            "headline",
            {
                "baseline": "vegeta-d-1-2",
                "target": "vegeta-s-16-2+of",
                "max_layers": 1,
                "max_output_tiles": 1,
            },
            cache=ResultCache(tmp_path),
        )
        assert all(row["speedup"] > 0 for row in table.rows)


class TestSpgemmExperiment:
    def test_registered_and_listed(self):
        from repro.experiments.registry import list_experiments

        assert "spgemm" in {experiment.name for experiment in list_experiments()}

    def test_spec_axes_and_cache_versioning(self):
        from repro.experiments.figures import SPGEMM_SPEC_VERSION, spgemm_spec

        spec = spgemm_spec()
        assert spec.version == SPGEMM_SPEC_VERSION
        assert spec.num_trials == 3 * 2 * 2
        # The machine description is part of every cache key.
        assert "machine" in spec.fixed
        trials = spec.trials()
        keys = {spec.cache_key(trial) for trial in trials}
        assert len(keys) == len(trials)

    def test_smoke_option_restricts_the_sweep(self, tmp_path):
        table = run_named("spgemm", {"smoke": True}, cache=ResultCache(tmp_path))
        assert len(table) == 4
        for row in table.rows:
            # Acceptance: fast == exact bit-for-bit and the functional result
            # matches the scipy/numpy sparse reference on validated points.
            assert row["validated"] is True
            assert row["exact_match"] is True
            assert row["functional_match"] is True
            assert row["spgemm_cycles"] == row["exact_cycles"]
            assert row["speedup_vs_dense"] > 1.0
            # The compressed B operand moves fewer bytes than SPMM's dense B
            # whenever the joint pattern matches A's (when A is tighter than
            # B, sparse x dense exploits A's pattern and can move less).
            if row["pattern_a"] == row["joint_pattern"]:
                assert row["traffic_vs_spmm"] < 1.0

    def test_trial_runner_matches_direct_simulation(self, tmp_path):
        from repro.cpu.params import default_machine
        from repro.cpu.simulator import CycleApproximateSimulator
        from repro.experiments.registry import get_trial_runner
        from repro.kernels.spgemm import build_spgemm_kernel

        params = {
            "shape": {"m": 64, "n": 64, "k": 256, "validate": False},
            "pattern_a": "2:4",
            "pattern_b": "2:4",
            "engine": "VEGETA-S-16-2+OF+SPGEMM",
            "machine": default_machine().to_dict(),
            "seed": 0,
        }
        row = get_trial_runner("spgemm")(params)
        program = build_spgemm_kernel(
            __import__("repro.types", fromlist=["GemmShape"]).GemmShape(64, 64, 256),
            SparsityPattern.SPARSE_2_4,
        )
        simulator = CycleApproximateSimulator(
            engine=resolve_engine("VEGETA-S-16-2+OF+SPGEMM")
        )
        direct = simulator.run(program.trace, block_starts=program.block_starts)
        assert row["spgemm_cycles"] == direct.core_cycles
        assert row["exact_cycles"] is None  # unvalidated shape skips the exact run

    def test_max_output_tiles_truncates_and_changes_cache_keys(self, tmp_path):
        from repro.experiments.figures import spgemm_spec

        full = spgemm_spec()
        truncated = spgemm_spec(max_output_tiles=1)
        assert full.cache_key(full.trials()[0]) != truncated.cache_key(
            truncated.trials()[0]
        )
        table = run_named(
            "spgemm",
            {"smoke": True, "max_output_tiles": 1},
            cache=ResultCache(tmp_path),
        )
        for row in table.rows:
            assert row["simulated_fraction"] < 1.0
            # Truncated traces still prove fast == exact, but the partial C
            # matrix cannot be validated functionally.
            assert row["exact_match"] is True
            assert row["functional_match"] is None


class TestBackendsExperiment:
    def test_registered_and_listed(self):
        from repro.experiments.registry import list_experiments

        names = {experiment.name for experiment in list_experiments()}
        assert "backends" in names

    def test_spec_axes_and_cache_versioning(self):
        from repro.experiments.figures import (
            BACKENDS_ENGINE_NAMES,
            BACKENDS_SPEC_VERSION,
            backends_spec,
        )

        spec = backends_spec()
        assert spec.version == BACKENDS_SPEC_VERSION
        assert tuple(spec.axes["engine"]) == BACKENDS_ENGINE_NAMES
        assert "AMX-like" in spec.axes["engine"]
        assert "SME-like" in spec.axes["engine"]
        # Only geometry-compatible layers are swept: every shape must tile
        # evenly under the 32-row / 32-column SME tiles too.
        for name in spec.axes["layer"]:
            shape = get_layer(name).gemm
            assert shape.m % 32 == 0 and shape.n % 32 == 0 and shape.k % 64 == 0

    def test_trials_select_each_backends_best_kernel(self, tmp_path):
        from repro.experiments.figures import backends_spec

        spec = backends_spec(
            layers=("ResNet50-L1",),
            patterns=(SparsityPattern.SPARSE_2_4,),
            max_output_tiles=2,
        )
        table = run_experiment(spec, cache=ResultCache(tmp_path))
        kernels = {row["engine"]: row["kernel"] for row in table.rows}
        assert kernels == {
            "VEGETA-S-16-2+OF": "spmm",
            "VEGETA-S-16-2+OF+SPGEMM": "spgemm",
            "AMX-like": "gemm",
            "SME-like": "gemm",
        }
        geometries = {row["engine"]: row["geometry"] for row in table.rows}
        assert geometries["SME-like"] == "sme"
        assert geometries["AMX-like"] == "amx"

    def test_reduce_appends_speedup_over_amx_baseline(self, tmp_path):
        table = run_named(
            "backends",
            {
                "layers": ("ResNet50-L1",),
                "max_output_tiles": 2,
            },
            cache=ResultCache(tmp_path),
        )
        assert "speedup_vs_baseline" in table.columns
        by_engine = {
            (row["pattern"], row["engine"]): row["speedup_vs_baseline"]
            for row in table.rows
        }
        for pattern in ("4:4", "2:4", "1:4"):
            assert by_engine[(pattern, "AMX-like")] == pytest.approx(1.0)
