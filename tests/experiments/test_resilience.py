"""Resilience tests: retries, deadlines, fault isolation, checkpoints, resume.

These pin the contract stated in ``repro.experiments.runner``: a raising
trial never poisons its chunk, completed rows are checkpointed as they
finish, permanent failures name every offender, and an interrupted sweep
resumes to a byte-identical table.
"""

import os
import time

import pytest

from repro.errors import ConfigurationError, ExperimentFailure
from repro.experiments.cache import ResultCache
from repro.experiments.executor import (
    MAX_RETRIES_ENV,
    TRIAL_TIMEOUT_ENV,
    RetryPolicy,
    resolve_retry_policy,
)
from repro.experiments.registry import trial_runner
from repro.experiments.runner import run_experiment
from repro.experiments.spec import ExperimentSpec
from repro.faults import FAULTS_ENV

#: Trial index the ``test-fragile`` runner raises on (unset = never); an
#: environment variable so forked worker processes inherit the behavior
#: without it leaking into the trial params (and thus the cache keys).
BOOM_ENV = "REPRO_TEST_BOOM"


@trial_runner("test-fragile")
def _fragile(params):
    boom = os.environ.get(BOOM_ENV, "")
    if boom and params["x"] == int(boom):
        raise ValueError(f"deterministic failure at x={params['x']}")
    return {"x": params["x"], "cube": params["x"] ** 3}


@trial_runner("test-sleepy")
def _sleepy(params):
    time.sleep(params["sleep"])
    return {"sleep": params["sleep"], "done": True}


def fragile_spec(count=8):
    return ExperimentSpec(
        name="test-fragile", version="1", axes={"x": list(range(count))}
    )


def cache_entries(root):
    return sorted(
        path
        for path in root.rglob("*.json")
        if "_quarantine" not in path.parts
    )


class TestResolveRetryPolicy:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv(MAX_RETRIES_ENV, raising=False)
        monkeypatch.delenv(TRIAL_TIMEOUT_ENV, raising=False)
        policy = resolve_retry_policy()
        assert policy == RetryPolicy(max_retries=0, trial_timeout=None)

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv(MAX_RETRIES_ENV, "3")
        monkeypatch.setenv(TRIAL_TIMEOUT_ENV, "2.5")
        policy = resolve_retry_policy()
        assert policy.max_retries == 3
        assert policy.trial_timeout == 2.5

    def test_arguments_beat_env(self, monkeypatch):
        monkeypatch.setenv(MAX_RETRIES_ENV, "3")
        assert resolve_retry_policy(max_retries=1).max_retries == 1

    @pytest.mark.parametrize("env, value", [(MAX_RETRIES_ENV, "many"), (TRIAL_TIMEOUT_ENV, "soon")])
    def test_bad_env_rejected(self, monkeypatch, env, value):
        monkeypatch.setenv(env, value)
        with pytest.raises(ConfigurationError):
            resolve_retry_policy()

    def test_bad_values_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_retry_policy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            resolve_retry_policy(trial_timeout=0.0)
        with pytest.raises(ConfigurationError):
            resolve_retry_policy(backoff_base=-0.1)


class TestRetries:
    def test_transient_fault_is_retried_away(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "trial-error:trials=2")
        table = run_experiment(
            fragile_spec(4), cache=False, max_retries=1, backoff_base=0.0
        )
        assert table.column("cube") == [x**3 for x in range(4)]
        assert table.meta["retried"] == 1
        assert table.meta["failed"] == 0

    def test_exhausted_retries_raise_naming_the_offender(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "trial-error:trials=2")
        with pytest.raises(ExperimentFailure) as excinfo:
            run_experiment(
                fragile_spec(4), cache=False, max_retries=0, backoff_base=0.0
            )
        message = str(excinfo.value)
        assert "trial 2" in message
        assert "'x': 2" in message
        assert "InjectedFault" in message
        (failure,) = excinfo.value.failures
        assert failure.index == 2
        assert failure.params == {"x": 2}
        assert failure.attempts == 1

    def test_on_failure_report_returns_partial_table(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "trial-error:trials=1")
        table = run_experiment(
            fragile_spec(4),
            cache=False,
            max_retries=0,
            backoff_base=0.0,
            on_failure="report",
        )
        assert len(table) == 3
        assert table.meta["failed"] == 1
        assert table.meta["failures"][0]["index"] == 1
        assert table.column("x") == [0, 2, 3]

    def test_bad_on_failure_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment(fragile_spec(1), cache=False, on_failure="ignore")


class TestDeadlines:
    def test_hung_trial_is_killed_and_reported(self):
        spec = ExperimentSpec(
            name="test-sleepy", version="1", axes={"sleep": [0.01, 30.0]}
        )
        started = time.perf_counter()
        with pytest.raises(ExperimentFailure) as excinfo:
            run_experiment(spec, cache=False, trial_timeout=0.3, backoff_base=0.0)
        assert time.perf_counter() - started < 10.0
        (failure,) = excinfo.value.failures
        assert failure.error_type == "TrialTimeout"
        assert "deadline" in failure.message

    def test_injected_hang_recovers_on_retry(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "trial-hang:trials=1,seconds=30")
        spec = ExperimentSpec(
            name="test-sleepy", version="1", axes={"sleep": [0.01, 0.01]}
        )
        table = run_experiment(
            spec,
            cache=False,
            trial_timeout=0.5,
            max_retries=1,
            backoff_base=0.0,
        )
        assert len(table) == 2
        assert table.meta["retried"] == 1


class TestParallelIsolation:
    """Satellite: a raising trial under jobs>1 must not poison the sweep."""

    def test_failure_preserves_completed_rows_and_names_the_trial(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(BOOM_ENV, "3")
        cache = ResultCache(tmp_path)
        with pytest.raises(ExperimentFailure) as excinfo:
            run_experiment(fragile_spec(8), jobs=2, cache=cache)
        message = str(excinfo.value)
        assert "trial 3" in message
        assert "'x': 3" in message
        assert "ValueError" in message
        # Every other trial completed and was checkpointed despite sharing
        # chunks (and a process pool) with the poisoned one.
        assert len(cache_entries(tmp_path)) == 7

    def test_resume_after_fixing_the_fault_is_byte_identical(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(BOOM_ENV, "3")
        cache = ResultCache(tmp_path)
        with pytest.raises(ExperimentFailure):
            run_experiment(fragile_spec(8), jobs=2, cache=cache)
        monkeypatch.delenv(BOOM_ENV)
        resumed = run_experiment(fragile_spec(8), cache=cache, resume=True)
        assert resumed.meta["cached"] == 7
        assert resumed.meta["executed"] == 1
        clean = run_experiment(fragile_spec(8), cache=False)
        assert resumed.to_json() == clean.to_json()


class TestWorkerCrash:
    def test_killed_worker_is_redispatched(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "worker-kill:trials=3")
        table = run_experiment(fragile_spec(6), jobs=2, cache=False)
        clean = run_experiment(fragile_spec(6), cache=False)
        assert table.to_json() == clean.to_json()

    def test_deterministic_crasher_is_isolated_and_named(self, monkeypatch):
        # Kill the worker on every dispatch attempt: re-dispatch cannot save
        # trial 3, so it must be split off, named, and surfaced — while the
        # other five trials still complete.
        monkeypatch.setenv(
            FAULTS_ENV,
            "worker-kill:trials=3;worker-kill:trials=3,attempt=1;"
            "worker-kill:trials=3,attempt=2",
        )
        table = run_experiment(
            fragile_spec(6), jobs=2, cache=False, on_failure="report"
        )
        assert len(table) == 5
        assert table.meta["failed"] == 1
        (failure,) = table.meta["failures"]
        assert failure["index"] == 3
        assert failure["error_type"] == "WorkerCrash"


class TestInterruptAndResume:
    """Satellite: SIGINT mid-sweep loses nothing that was checkpointed."""

    def test_checkpoints_survive_and_resume_is_byte_identical(
        self, monkeypatch, tmp_path
    ):
        cache = ResultCache(tmp_path)
        monkeypatch.setenv(FAULTS_ENV, "interrupt:trials=4")
        with pytest.raises(KeyboardInterrupt):
            run_experiment(fragile_spec(8), cache=cache)
        # Trials 0-3 completed before the interrupt and were checkpointed.
        assert len(cache_entries(tmp_path)) == 4

        monkeypatch.delenv(FAULTS_ENV)
        resumed = run_experiment(fragile_spec(8), cache=cache, resume=True)
        assert resumed.meta["cached"] == 4
        assert resumed.meta["executed"] == 4
        clean = run_experiment(fragile_spec(8), cache=False)
        assert resumed.to_json() == clean.to_json()

    def test_resume_requires_the_cache(self):
        with pytest.raises(ConfigurationError, match="resume"):
            run_experiment(fragile_spec(2), cache=False, resume=True)


class TestCheckpointWriteFailures:
    def test_failed_checkpoint_writes_do_not_abort_the_sweep(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(FAULTS_ENV, "write-fail:p=1")
        table = run_experiment(fragile_spec(4), cache=ResultCache(tmp_path))
        assert len(table) == 4
        assert table.meta["checkpoint_errors"] == 4
        assert cache_entries(tmp_path) == []
