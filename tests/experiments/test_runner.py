"""Tests for executors and the run_experiment orchestration."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cache import ResultCache
from repro.experiments.executor import (
    JOBS_ENV,
    MultiprocessExecutor,
    SerialExecutor,
    make_executor,
    resolve_jobs,
)
from repro.experiments.figures import figure13_spec
from repro.experiments.registry import get_trial_runner, trial_runner
from repro.experiments.runner import run_experiment
from repro.experiments.spec import ExperimentSpec


@trial_runner("test-square")
def _square(params):
    return {"x": params["x"], "square": params["x"] ** 2}


def square_spec(count=8):
    return ExperimentSpec(
        name="test-square", version="1", axes={"x": list(range(count))}
    )


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs(None) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs(None) == 3

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs(2) == 2

    def test_nonpositive_means_all_cores(self):
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-1) >= 1

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        with pytest.raises(ConfigurationError):
            resolve_jobs(None)

    def test_make_executor_picks_backend(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(2), MultiprocessExecutor)


class TestExecutors:
    def test_serial_preserves_order(self):
        trials = [(i, {"x": i}) for i in range(5)]
        results = SerialExecutor().run("test-square", trials)
        assert [index for index, _ in results] == list(range(5))
        assert [row["square"] for _, row in results] == [0, 1, 4, 9, 16]

    def test_multiprocess_matches_serial(self):
        trials = [(i, {"x": i}) for i in range(11)]
        serial = SerialExecutor().run("test-square", trials)
        parallel = MultiprocessExecutor(2).run("test-square", trials)
        assert parallel == serial

    def test_unknown_runner_rejected(self):
        with pytest.raises(ConfigurationError):
            get_trial_runner("no-such-runner")


class TestRunExperiment:
    def test_rows_in_spec_order(self, tmp_path):
        table = run_experiment(square_spec(), cache=ResultCache(tmp_path))
        assert table.column("x") == list(range(8))
        assert table.column("square") == [x * x for x in range(8)]
        assert table.meta["executed"] == 8
        assert table.meta["cached"] == 0

    def test_second_run_fully_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_experiment(square_spec(), cache=cache)
        second = run_experiment(square_spec(), cache=cache)
        assert second.meta["cached"] == 8
        assert second.meta["executed"] == 0
        assert second == first
        assert second.to_json() == first.to_json()

    def test_partial_cache_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_experiment(square_spec(4), cache=cache)
        table = run_experiment(square_spec(8), cache=cache)
        assert table.meta["cached"] == 4
        assert table.meta["executed"] == 4
        assert table.column("square") == [x * x for x in range(8)]

    def test_version_bump_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_experiment(square_spec(), cache=cache)
        bumped = ExperimentSpec(name="test-square", version="2", axes={"x": list(range(8))})
        table = run_experiment(bumped, cache=cache)
        assert table.meta["executed"] == 8

    def test_no_cache_runs_everything(self, tmp_path):
        table = run_experiment(square_spec(), cache=False)
        assert table.meta["executed"] == 8
        assert not list(tmp_path.iterdir())

    def test_columns_inferred_when_not_declared(self):
        table = run_experiment(square_spec(2), cache=False)
        assert table.columns == ("x", "square")


class TestFigure13Parity:
    """The acceptance contract: identical tables from every backend."""

    @pytest.fixture(scope="class")
    def spec(self):
        return figure13_spec(
            layers=["GPT-L1"],
            engine_names=("VEGETA-D-1-2", "VEGETA-S-16-2+OF"),
            max_output_tiles=1,
        )

    def test_serial_and_parallel_tables_byte_identical(self, spec):
        serial = run_experiment(spec, jobs=1, cache=False)
        parallel = run_experiment(spec, jobs=2, cache=False)
        assert serial.to_json() == parallel.to_json()
        assert serial.to_csv() == parallel.to_csv()

    def test_warm_cache_byte_identical(self, spec, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_experiment(spec, cache=cache)
        warm = run_experiment(spec, cache=cache)
        assert warm.meta["executed"] == 0
        assert warm.to_json() == cold.to_json()
