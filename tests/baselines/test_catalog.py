"""Tests for the prior-work baselines and Table I."""

import pytest

from repro.baselines.catalog import (
    TABLE_I,
    best_vegeta_engine,
    prior_work_engine,
    sota_dense_engine,
    table1,
)
from repro.errors import ConfigurationError
from repro.types import SparsityGranularity


class TestTableI:
    def test_four_rows_in_paper_order(self):
        rows = table1()
        assert [row.name for row in rows] == ["NVIDIA STC", "STA", "S2TA", "VEGETA"]

    def test_only_vegeta_supports_row_wise(self):
        for row in table1():
            expected = row.name == "VEGETA"
            assert row.supports(SparsityGranularity.ROW_WISE) == expected

    def test_stc_is_network_wise_only(self):
        stc = TABLE_I["NVIDIA STC"]
        assert stc.supports(SparsityGranularity.NETWORK_WISE)
        assert not stc.supports(SparsityGranularity.LAYER_WISE)

    def test_s2ta_supports_tile_wise(self):
        assert TABLE_I["S2TA"].supports(SparsityGranularity.TILE_WISE)

    def test_support_is_monotonically_increasing_down_the_table(self):
        rows = table1()
        for earlier, later in zip(rows, rows[1:]):
            assert earlier.supported <= later.supported


class TestPriorWorkEngines:
    def test_rasa_sm_maps_to_d_1_1(self):
        assert prior_work_engine("RASA-SM").name == "VEGETA-D-1-1"

    def test_rasa_dm_maps_to_d_1_2(self):
        assert prior_work_engine("RASA-DM").name == "VEGETA-D-1-2"

    def test_tmul_maps_to_d_16_1(self):
        assert prior_work_engine("TMUL").name == "VEGETA-D-16-1"

    def test_stc_is_sparse_but_2_4_only(self):
        engine = prior_work_engine("STC")
        assert engine.sparse and not engine.supports_rowwise

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            prior_work_engine("TPU")

    def test_sota_dense_is_rasa_dm(self):
        assert sota_dense_engine().name == "VEGETA-D-1-2"

    def test_best_vegeta_engine_has_forwarding_by_default(self):
        engine = best_vegeta_engine()
        assert engine.output_forwarding and engine.alpha == 16
        assert not best_vegeta_engine(output_forwarding=False).output_forwarding
