"""Tests for mapping-space enumeration and equivalence collapsing."""

import pytest

from repro.analysis.runtime import resolve_engine
from repro.errors import ConfigurationError
from repro.planner.space import (
    MappingCandidate,
    canonical_engine_name,
    enumerate_mappings,
    select_kernel,
)
from repro.types import SparsityPattern


def resolve(*names):
    return {name: resolve_engine(name) for name in names}


class TestSelectKernel:
    def test_spgemm_unit_selects_spgemm_on_sparse(self):
        engine = resolve_engine("VEGETA-S-16-2+OF+SPGEMM")
        assert select_kernel(engine, SparsityPattern.SPARSE_2_4) == (
            "spgemm",
            SparsityPattern.SPARSE_2_4,
        )
        assert select_kernel(engine, SparsityPattern.SPARSE_1_4) == (
            "spgemm",
            SparsityPattern.SPARSE_1_4,
        )

    def test_sparse_engine_without_unit_selects_spmm(self):
        engine = resolve_engine("VEGETA-S-4-2")
        assert select_kernel(engine, SparsityPattern.SPARSE_2_4) == (
            "spmm",
            SparsityPattern.SPARSE_2_4,
        )

    def test_dense_backends_fall_back_to_gemm(self):
        for name in ("AMX-like", "SME-like", "VEGETA-D-1-2"):
            engine = resolve_engine(name)
            assert select_kernel(engine, SparsityPattern.SPARSE_2_4) == (
                "gemm",
                SparsityPattern.DENSE_4_4,
            )

    def test_everything_runs_gemm_on_dense(self):
        for name in ("VEGETA-S-16-2+OF+SPGEMM", "VEGETA-S-4-2", "SME-like"):
            engine = resolve_engine(name)
            assert select_kernel(engine, SparsityPattern.DENSE_4_4) == (
                "gemm",
                SparsityPattern.DENSE_4_4,
            )


class TestCanonicalEngineName:
    def test_suffix_stripped_when_kernel_cannot_use_it(self):
        assert (
            canonical_engine_name("VEGETA-S-16-2+OF+SPGEMM", "gemm")
            == "VEGETA-S-16-2+OF"
        )
        assert (
            canonical_engine_name("VEGETA-S-16-2+OF+SPGEMM", "spmm")
            == "VEGETA-S-16-2+OF"
        )

    def test_suffix_kept_for_spgemm_kernel(self):
        assert (
            canonical_engine_name("VEGETA-S-16-2+OF+SPGEMM", "spgemm")
            == "VEGETA-S-16-2+OF+SPGEMM"
        )

    def test_plain_names_untouched(self):
        assert canonical_engine_name("SME-like", "gemm") == "SME-like"


class TestEnumerateMappings:
    def test_space_size_is_the_full_cross_product(self):
        space = enumerate_mappings(
            SparsityPattern.SPARSE_2_4,
            resolve("VEGETA-S-4-2", "SME-like"),
            cores=(1, 2),
            strategies=("row-block", "2d-cyclic"),
            topologies=("flat", "dual-socket"),
        )
        assert space.space_size == 2 * 2 * 2 * 2
        assert len(space.candidates) + space.collapsed == space.space_size

    def test_single_core_collapses_strategy_and_topology(self):
        space = enumerate_mappings(
            SparsityPattern.SPARSE_2_4,
            resolve("VEGETA-S-4-2"),
            cores=(1,),
            strategies=("row-block", "column-block", "2d-cyclic"),
            topologies=("flat", "dual-socket"),
        )
        assert len(space.candidates) == 1
        assert space.collapsed == 5
        (candidate,) = space.candidates
        assert candidate.strategy == "row-block"
        assert candidate.topology == "flat"

    def test_inert_spgemm_unit_collapses_into_stripped_twin(self):
        # On a dense workload both engines run the same dense GEMM kernel and
        # the stream-merge unit never enters the timing model, so the pair
        # collapses to the suffix-stripped name.
        space = enumerate_mappings(
            SparsityPattern.DENSE_4_4,
            resolve("VEGETA-S-16-2+OF", "VEGETA-S-16-2+OF+SPGEMM"),
            cores=(2,),
            strategies=("row-block",),
            topologies=("flat",),
        )
        assert len(space.candidates) == 1
        assert space.collapsed == 1
        assert space.candidates[0].engine == "VEGETA-S-16-2+OF"

    def test_spgemm_unit_not_collapsed_when_kernel_uses_it(self):
        space = enumerate_mappings(
            SparsityPattern.SPARSE_2_4,
            resolve("VEGETA-S-16-2+OF", "VEGETA-S-16-2+OF+SPGEMM"),
            cores=(2,),
            strategies=("row-block",),
            topologies=("flat",),
        )
        engines = {candidate.engine for candidate in space.candidates}
        assert engines == {"VEGETA-S-16-2+OF", "VEGETA-S-16-2+OF+SPGEMM"}
        kernels = {candidate.kernel for candidate in space.candidates}
        assert kernels == {"spmm", "spgemm"}

    def test_candidates_are_unique(self):
        space = enumerate_mappings(
            SparsityPattern.SPARSE_2_4,
            resolve("VEGETA-S-4-2", "SME-like", "AMX-like"),
            cores=(1, 2, 4),
            strategies=("row-block", "column-block", "2d-cyclic"),
            topologies=("flat", "dual-socket"),
        )
        assert len(set(space.candidates)) == len(space.candidates)

    def test_row_wise_rejected(self):
        with pytest.raises(ConfigurationError):
            enumerate_mappings(
                SparsityPattern.ROW_WISE,
                resolve("VEGETA-S-4-2"),
                cores=(1,),
                strategies=("row-block",),
                topologies=("flat",),
            )

    @pytest.mark.parametrize("axis", ("engines", "cores", "strategies", "topologies"))
    def test_empty_axes_rejected(self, axis):
        kwargs = {
            "engines": resolve("VEGETA-S-4-2"),
            "cores": (1,),
            "strategies": ("row-block",),
            "topologies": ("flat",),
        }
        kwargs[axis] = {} if axis == "engines" else ()
        with pytest.raises(ConfigurationError, match=axis):
            enumerate_mappings(SparsityPattern.SPARSE_2_4, **kwargs)


class TestMappingCandidate:
    def test_as_dict_round_trips_the_fields(self):
        candidate = MappingCandidate(
            engine="SME-like",
            kernel="gemm",
            executed="4:4",
            cores=4,
            strategy="2d-cyclic",
            topology="dual-socket",
        )
        assert candidate.as_dict() == {
            "engine": "SME-like",
            "kernel": "gemm",
            "executed": "4:4",
            "cores": 4,
            "strategy": "2d-cyclic",
            "topology": "dual-socket",
        }
