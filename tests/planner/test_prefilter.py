"""Tests for the analytic pre-filter statics.

The load-bearing property is *soundness*: ``bound_cycles`` must never exceed
the simulated makespan of the same mapping, on compute-rich and
bandwidth-starved machines alike, because the dominance pruning in
:mod:`repro.planner.autotune` is only frontier-preserving when the bound is a
true lower bound.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.runtime import resolve_engine
from repro.cpu.multicore import simulate_multicore
from repro.cpu.params import default_machine, get_topology, memory_bound_machine
from repro.cpu.trace import summarize_trace
from repro.kernels.sharding import shard_kernel
from repro.planner.prefilter import mapping_statics
from repro.planner.space import select_kernel
from repro.types import GemmShape, SparsityPattern

MACHINES = {
    "default": default_machine(),
    "membound": memory_bound_machine(),
}

ENGINE_NAMES = (
    "VEGETA-D-1-2",
    "VEGETA-S-4-2",
    "VEGETA-S-16-2+OF",
    "VEGETA-S-16-2+OF+SPGEMM",
    "AMX-like",
    "SME-like",
)


def build_mapping(engine_name, pattern, shape, cores, strategy, topology_name):
    engine = resolve_engine(engine_name)
    kernel, executed = select_kernel(engine, pattern)
    topology = None if topology_name == "flat" else get_topology(topology_name)
    sharded = shard_kernel(
        kernel,
        shape,
        executed,
        cores,
        strategy,
        topology=topology,
        geometry=engine.geometry,
    )
    return engine, sharded, topology


class TestExactStatics:
    def test_traffic_is_the_sum_of_per_core_trace_bytes(self):
        engine, sharded, topology = build_mapping(
            "VEGETA-S-4-2",
            SparsityPattern.SPARSE_2_4,
            GemmShape(64, 64, 256),
            4,
            "row-block",
            "flat",
        )
        statics = mapping_statics(sharded, MACHINES["default"], engine, topology)
        assert statics.traffic_bytes == sum(
            summarize_trace(program.trace).memory_bytes
            for program in sharded.programs
        )

    def test_even_partition_has_unit_imbalance(self):
        engine, sharded, topology = build_mapping(
            "SME-like",
            SparsityPattern.DENSE_4_4,
            GemmShape(128, 128, 128),
            4,
            "2d-cyclic",
            "flat",
        )
        statics = mapping_statics(sharded, MACHINES["default"], engine, topology)
        assert statics.load_imbalance == 1.0

    def test_uneven_partition_reports_imbalance(self):
        # 3 cores over a 4x4 output grid: shares of 6/5/5 tiles.
        engine, sharded, topology = build_mapping(
            "VEGETA-D-1-2",
            SparsityPattern.DENSE_4_4,
            GemmShape(64, 64, 64),
            3,
            "row-block",
            "flat",
        )
        statics = mapping_statics(sharded, MACHINES["default"], engine, topology)
        assert statics.load_imbalance > 1.0

    def test_combined_footprint_not_less_than_any_core(self):
        engine, sharded, topology = build_mapping(
            "VEGETA-S-4-2",
            SparsityPattern.SPARSE_2_4,
            GemmShape(128, 128, 256),
            4,
            "column-block",
            "dual-socket",
        )
        statics = mapping_statics(sharded, MACHINES["default"], engine, topology)
        assert statics.combined_footprint_bytes >= statics.max_core_footprint_bytes
        assert statics.max_core_footprint_bytes > 0


class TestBoundStructure:
    def test_memory_bound_is_zero_under_ideal_prefetch(self):
        machine = MACHINES["default"]
        assert machine.prefetch_into_l2
        engine, sharded, topology = build_mapping(
            "VEGETA-D-1-2",
            SparsityPattern.DENSE_4_4,
            GemmShape(64, 64, 128),
            2,
            "row-block",
            "flat",
        )
        statics = mapping_statics(sharded, machine, engine, topology)
        assert statics.memory_bound_cycles == 0
        assert statics.bound_cycles == statics.compute_bound_cycles

    def test_memory_bound_active_on_bandwidth_starved_machine(self):
        machine = MACHINES["membound"]
        assert not machine.prefetch_into_l2
        engine, sharded, topology = build_mapping(
            "VEGETA-D-1-2",
            SparsityPattern.DENSE_4_4,
            GemmShape(64, 64, 128),
            2,
            "row-block",
            "flat",
        )
        statics = mapping_statics(sharded, machine, engine, topology)
        assert statics.memory_bound_cycles > 0

    def test_compute_bound_scales_with_the_most_loaded_core(self):
        engine, sharded, topology = build_mapping(
            "VEGETA-D-1-2",
            SparsityPattern.DENSE_4_4,
            GemmShape(64, 64, 128),
            2,
            "row-block",
            "flat",
        )
        machine = MACHINES["default"]
        statics = mapping_statics(sharded, machine, engine, topology)
        issue = max(engine.issue_interval, engine.busy_cycles_per_instruction)
        assert statics.compute_bound_cycles == (
            statics.max_core_compute_instructions
            * issue
            * machine.core.engine_clock_ratio
        )


class TestBoundSoundness:
    @given(
        engine_name=st.sampled_from(ENGINE_NAMES),
        machine_name=st.sampled_from(sorted(MACHINES)),
        pattern=st.sampled_from(
            [SparsityPattern.DENSE_4_4, SparsityPattern.SPARSE_2_4]
        ),
        mn_tiles=st.integers(min_value=2, max_value=4),
        k_tiles=st.integers(min_value=1, max_value=3),
        cores=st.sampled_from([1, 2, 4]),
        strategy=st.sampled_from(["row-block", "column-block", "2d-cyclic"]),
        topology_name=st.sampled_from(["flat", "dual-socket"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_bound_never_exceeds_simulated_cycles(
        self,
        engine_name,
        machine_name,
        pattern,
        mn_tiles,
        k_tiles,
        cores,
        strategy,
        topology_name,
    ):
        machine = MACHINES[machine_name]
        shape = GemmShape(m=mn_tiles * 32, n=mn_tiles * 32, k=k_tiles * 128)
        engine, sharded, topology = build_mapping(
            engine_name, pattern, shape, cores, strategy, topology_name
        )
        statics = mapping_statics(sharded, machine, engine, topology)
        result = simulate_multicore(
            sharded.programs,
            machine=machine,
            engine=engine,
            topology=topology,
            memo=False,
        )
        assert statics.bound_cycles <= result.core_cycles
