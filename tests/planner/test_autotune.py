"""Tests for the mapping-space search: frontier math and prune soundness."""

from hypothesis import given, settings, strategies as st

import pytest

from repro.analysis.runtime import resolve_engine
from repro.cpu.multicore import simulate_multicore
from repro.cpu.params import default_machine, memory_bound_machine
from repro.errors import ConfigurationError
from repro.kernels.sharding import shard_kernel
from repro.planner.autotune import autotune_workload, dominates, pareto_frontier
from repro.types import GemmShape, SparsityPattern

MACHINES = {
    "default": default_machine(),
    "membound": memory_bound_machine(),
}


class TestDominance:
    def test_strict_dominance(self):
        assert dominates((1, 1, 1), (2, 2, 2))
        assert dominates((1, 2, 2), (2, 2, 2))

    def test_ties_do_not_dominate(self):
        assert not dominates((2, 2, 2), (2, 2, 2))

    def test_tradeoffs_do_not_dominate(self):
        assert not dominates((1, 3, 1), (2, 2, 2))
        assert not dominates((2, 2, 2), (1, 3, 1))


class TestParetoFrontier:
    def test_single_point_is_the_frontier(self):
        assert pareto_frontier([(1, 1, 1)]) == [0]

    def test_dominated_points_excluded(self):
        points = [(1, 4, 1), (2, 2, 1), (3, 3, 1), (4, 1, 1)]
        assert pareto_frontier(points) == [0, 1, 3]

    def test_exact_ties_are_all_kept(self):
        points = [(1, 1, 1), (1, 1, 1), (2, 2, 2)]
        assert pareto_frontier(points) == [0, 1]

    @given(
        points=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_every_point_is_on_or_dominated_by_the_frontier(self, points):
        frontier = pareto_frontier(points)
        assert frontier, "a non-empty set always has a non-dominated point"
        for index, point in enumerate(points):
            assert index in frontier or any(
                dominates(points[other], point) for other in frontier
            )


def search(machine, pattern, shape, prune, **axes):
    return autotune_workload(
        shape,
        pattern,
        machine,
        engines=axes.get("engines", ("VEGETA-S-4-2", "SME-like")),
        cores=axes.get("cores", (1, 2)),
        strategies=axes.get("strategies", ("row-block", "2d-cyclic")),
        topologies=axes.get("topologies", ("flat",)),
        prune=prune,
        memo=False,
    )


class TestAutotuneWorkload:
    SHAPE = GemmShape(64, 64, 256)

    def test_exhaustive_mode_simulates_every_candidate(self):
        plan = search(MACHINES["default"], SparsityPattern.SPARSE_2_4, self.SHAPE, False)
        assert plan.simulated == len(plan.outcomes)
        assert plan.pruned == 0
        assert all(outcome.simulated for outcome in plan.outcomes)

    def test_pruned_mode_keeps_accounting_consistent(self):
        plan = search(MACHINES["default"], SparsityPattern.SPARSE_2_4, self.SHAPE, True)
        assert plan.simulated + plan.pruned == len(plan.outcomes)
        assert plan.space_size >= len(plan.outcomes)
        assert plan.prune_ratio >= 1.0

    def test_best_is_the_lowest_cycle_frontier_point(self):
        plan = search(MACHINES["default"], SparsityPattern.SPARSE_2_4, self.SHAPE, False)
        best = plan.best
        assert best is not None and best.on_frontier
        assert best.cycles == min(outcome.cycles for outcome in plan.frontier)

    def test_search_is_deterministic(self):
        first = search(MACHINES["default"], SparsityPattern.SPARSE_2_4, self.SHAPE, True)
        second = search(MACHINES["default"], SparsityPattern.SPARSE_2_4, self.SHAPE, True)
        assert [o.as_row() for o in first.outcomes] == [
            o.as_row() for o in second.outcomes
        ]

    def test_block_memo_does_not_change_the_table(self):
        without = autotune_workload(
            self.SHAPE,
            SparsityPattern.SPARSE_2_4,
            MACHINES["default"],
            engines=("VEGETA-S-4-2", "SME-like"),
            cores=(1, 2),
            strategies=("row-block", "2d-cyclic"),
            topologies=("flat",),
            memo=False,
        )
        with_memo = autotune_workload(
            self.SHAPE,
            SparsityPattern.SPARSE_2_4,
            MACHINES["default"],
            engines=("VEGETA-S-4-2", "SME-like"),
            cores=(1, 2),
            strategies=("row-block", "2d-cyclic"),
            topologies=("flat",),
            memo=True,
        )
        assert [o.as_row() for o in without.outcomes] == [
            o.as_row() for o in with_memo.outcomes
        ]

    def test_pruned_outcome_has_no_objectives(self):
        plan = search(
            MACHINES["default"],
            SparsityPattern.SPARSE_2_4,
            self.SHAPE,
            True,
            engines=("VEGETA-D-1-1", "VEGETA-S-4-2", "SME-like"),
            cores=(1, 2, 4),
        )
        pruned = [outcome for outcome in plan.outcomes if not outcome.simulated]
        if not pruned:
            pytest.skip("nothing pruned on this space")
        with pytest.raises(ConfigurationError):
            pruned[0].objectives

    def test_spgemm_flag_is_timing_inert_on_dense_kernels(self):
        # The justification for collapsing ``+SPGEMM`` candidates on
        # non-SpGEMM kernels: the flag changes nothing but the SpGEMM feed
        # overhead, so dense-GEMM cycles are bit-identical across the pair.
        shape = GemmShape(64, 64, 128)
        sharded = shard_kernel(
            "gemm", shape, SparsityPattern.DENSE_4_4, 2, "row-block"
        )
        cycles = {
            name: simulate_multicore(
                sharded.programs,
                machine=MACHINES["default"],
                engine=resolve_engine(name),
                memo=False,
            ).core_cycles
            for name in ("VEGETA-S-16-2+OF", "VEGETA-S-16-2+OF+SPGEMM")
        }
        assert cycles["VEGETA-S-16-2+OF"] == cycles["VEGETA-S-16-2+OF+SPGEMM"]


class TestPruneSoundness:
    """Pruning must be frontier-preserving on exhaustively simulated spaces."""

    @given(
        machine_name=st.sampled_from(sorted(MACHINES)),
        pattern=st.sampled_from(
            [SparsityPattern.DENSE_4_4, SparsityPattern.SPARSE_2_4]
        ),
        engines=st.sets(
            st.sampled_from(
                [
                    "VEGETA-D-1-1",
                    "VEGETA-S-4-2",
                    "VEGETA-S-16-2+OF+SPGEMM",
                    "AMX-like",
                    "SME-like",
                ]
            ),
            min_size=1,
            max_size=3,
        ),
        cores=st.sets(st.sampled_from([1, 2, 4]), min_size=1, max_size=2),
        strategies=st.sets(
            st.sampled_from(["row-block", "column-block", "2d-cyclic"]),
            min_size=1,
            max_size=2,
        ),
        topologies=st.sets(
            st.sampled_from(["flat", "dual-socket"]), min_size=1, max_size=2
        ),
    )
    @settings(max_examples=12, deadline=None)
    def test_frontier_identical_with_and_without_pruning(
        self, machine_name, pattern, engines, cores, strategies, topologies
    ):
        machine = MACHINES[machine_name]
        shape = GemmShape(64, 64, 256)
        axes = dict(
            engines=tuple(sorted(engines)),
            cores=tuple(sorted(cores)),
            strategies=tuple(sorted(strategies)),
            topologies=tuple(sorted(topologies)),
        )
        exhaustive = search(machine, pattern, shape, False, **axes)
        pruned = search(machine, pattern, shape, True, **axes)

        # The bound the pruning leans on is sound on every simulated point.
        for outcome in exhaustive.outcomes:
            assert outcome.statics.bound_cycles <= outcome.cycles

        def frontier_keys(plan):
            return {
                (outcome.candidate, outcome.cycles) for outcome in plan.frontier
            }

        # A pruned search must find the exact frontier of the exhaustive one:
        # no frontier point pruned, no dominated point promoted.
        assert frontier_keys(pruned) == frontier_keys(exhaustive)
        assert pruned.space_size == exhaustive.space_size
        assert pruned.simulated <= exhaustive.simulated
