"""Tests for the registered ``autotune`` experiment and its reduce step."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.registry import get_experiment
from repro.experiments.results import ResultTable
from repro.planner.experiment import (
    AUTOTUNE_MAPPING_COLUMNS,
    AUTOTUNE_SMOKE_CORES,
    AUTOTUNE_SMOKE_TOPOLOGIES,
    AUTOTUNE_SMOKE_WORKLOADS,
    _autotune_reduce,
    _autotune_workloads,
    _selected_workloads,
    autotune_spec,
    run_autotune_trial,
)


class TestRegistration:
    def test_autotune_is_registered_with_sweep_axis_flags(self):
        experiment = get_experiment("autotune")
        assert experiment.cli_options == ("topology", "cores")
        assert experiment.reduce is _autotune_reduce

    def test_smoke_build_restricts_every_axis(self):
        spec = get_experiment("autotune").build({"smoke": True})
        assert spec.fixed["cores"] == list(AUTOTUNE_SMOKE_CORES)
        assert spec.fixed["topologies"] == list(AUTOTUNE_SMOKE_TOPOLOGIES)
        workloads = [workload["name"] for workload in spec.axes["workload"]]
        assert workloads == list(AUTOTUNE_SMOKE_WORKLOADS)

    def test_spec_rejects_unknown_topology(self):
        with pytest.raises(ConfigurationError):
            autotune_spec(topologies=("flat", "no-such-preset"))


class TestWorkloadSelection:
    def test_default_axis_has_the_four_workloads(self):
        names = [workload["name"] for workload in _autotune_workloads()]
        assert names == [
            "gemm-compute",
            "gemm-membound",
            "sparse-2:4",
            "sparse-1:4",
        ]

    def test_name_filter_selects_in_request_order(self):
        selected = _selected_workloads(
            {"workload_names": ["sparse-1:4", "gemm-compute"]}
        )
        assert [workload["name"] for workload in selected] == [
            "sparse-1:4",
            "gemm-compute",
        ]

    def test_unknown_workload_name_rejected(self):
        with pytest.raises(ConfigurationError, match="no-such-workload"):
            _selected_workloads({"workload_names": ["no-such-workload"]})

    def test_explicit_workloads_bypass_the_catalog(self):
        custom = [{"name": "custom", "m": 64, "n": 64, "k": 128}]
        assert _selected_workloads({"workloads": custom}) == custom


def tiny_trial_params():
    """A minimal single-workload search for trial/reduce integration tests."""
    from repro.cpu.params import default_machine
    from repro.types import SparsityPattern

    return {
        "workload": {
            "name": "tiny",
            "m": 64, "n": 64, "k": 256,
            "pattern": SparsityPattern.SPARSE_2_4.value,
            "machine": default_machine().to_dict(),
        },
        "engines": ["VEGETA-S-4-2", "SME-like"],
        "cores": [1, 2],
        "strategies": ["row-block", "2d-cyclic"],
        "topologies": ["flat"],
    }


class TestTrialAndReduce:
    def test_trial_row_summarizes_the_search(self):
        row = run_autotune_trial(tiny_trial_params())
        assert row["workload"] == "tiny"
        assert row["space_size"] == 2 * 2 * 2 * 1
        assert row["simulated"] + row["pruned"] == row["candidates"]
        assert row["frontier_size"] >= 1
        assert row["best_engine"] is not None
        assert row["best_cycles"] is not None
        assert len(row["mappings"]) == row["candidates"]

    def test_reduce_explodes_one_row_per_mapping_with_best_flag(self):
        trial = run_autotune_trial(tiny_trial_params())
        table = _autotune_reduce(ResultTable(("workload",), [trial]), {})
        assert table.columns == AUTOTUNE_MAPPING_COLUMNS
        assert len(table.rows) == trial["candidates"]
        best_rows = [row for row in table.rows if row["best"]]
        assert len(best_rows) == 1
        best = best_rows[0]
        assert best["on_frontier"] and best["simulated"]
        assert best["engine"] == trial["best_engine"]
        assert best["cycles"] == trial["best_cycles"]
        # Every row carries the workload-level prune ratio and a sound bound.
        for row in table.rows:
            assert row["prune_ratio"] == trial["prune_ratio"]
            if row["simulated"]:
                assert row["bound_cycles"] <= row["cycles"]
            else:
                assert row["cycles"] is None
