"""SpGEMM fast-path parity: feed-overhead-aware steady-state detection.

The SpGEMM kernels stamp a data-dependent Feed-First overhead on every tile
instruction (the dual-operand metadata intersection), so the fast path's
shift-invariance proof must treat the overhead sequence as part of a block's
identity: blocks are skippable only when their overhead sequences match
element-wise.  These tests pin the acceptance contract — fast == exact
*bit-for-bit* across random dual sparsity structures, with and without
output forwarding, including operands crafted so neighbouring blocks carry
different overhead sequences and the fast path must refuse to skip.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import get_engine
from repro.cpu.fastsim import (
    DEFAULT_MAX_SUPER_PERIOD,
    MAX_SUPER_PERIOD_ENV,
    resolve_max_super_period,
    run_fast,
)
from repro.cpu.multicore import simulation_cache_key
from repro.cpu.params import default_machine
from repro.cpu.simulator import CycleApproximateSimulator
from repro.errors import ConfigurationError
from repro.kernels.spgemm import build_spgemm_kernel
from repro.kernels.tiling import TILE_M
from repro.sparse.pruning import prune_to_pattern
from repro.types import GemmShape, SparsityPattern

ENGINE_OF = get_engine("VEGETA-S-16-2").with_output_forwarding().with_spgemm()
ENGINE_NO_OF = get_engine("VEGETA-S-16-2").with_spgemm()


def _random_dual_sparse(shape, pattern, rng, a_density=1.0, b_density=1.0):
    """Random operands satisfying the joint pattern, with optional whole
    K-blocks zeroed to vary the metadata-intersection occupancy."""
    a = prune_to_pattern(
        rng.standard_normal((shape.m, shape.k)).astype(np.float32), pattern
    )
    b = prune_to_pattern(
        rng.standard_normal((shape.k, shape.n)).astype(np.float32).T, pattern
    ).T
    if a_density < 1.0:
        blocks = a.reshape(shape.m, shape.k // 4, 4)
        mask = rng.random((shape.m, shape.k // 4)) < a_density
        a = (blocks * mask[:, :, None]).reshape(shape.m, shape.k)
    if b_density < 1.0:
        blocks = b.T.reshape(shape.n, shape.k // 4, 4)
        mask = rng.random((shape.n, shape.k // 4)) < b_density
        b = (blocks * mask[:, :, None]).reshape(shape.n, shape.k).T
    return a, b


def _assert_bit_identical(program, engine):
    simulator = CycleApproximateSimulator(engine=engine)
    exact = simulator.run(program.trace, mode="exact")
    fast = simulator.run(program.trace, block_starts=program.block_starts)
    assert fast.core_cycles == exact.core_cycles
    assert fast.memory_counters == exact.memory_counters
    assert fast.engine_busy_cycles == exact.engine_busy_cycles
    assert fast.tile_compute_ops == exact.tile_compute_ops
    assert fast.trace_summary == exact.trace_summary
    return exact, fast


class TestSpgemmFastExactParity:
    """fast == exact bit-for-bit across random dual sparsity structures."""

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        pattern=st.sampled_from(
            [SparsityPattern.SPARSE_2_4, SparsityPattern.SPARSE_1_4]
        ),
        k_tiles=st.integers(min_value=1, max_value=3),
        forwarding=st.booleans(),
        a_density=st.sampled_from([1.0, 0.6, 0.2]),
        b_density=st.sampled_from([1.0, 0.5]),
    )
    @settings(max_examples=12, deadline=None)
    def test_random_dual_sparsity(
        self, seed, pattern, k_tiles, forwarding, a_density, b_density
    ):
        shape = GemmShape(64, 64, k_tiles * 32 * pattern.compression_ratio)
        rng = np.random.default_rng(seed)
        a, b = _random_dual_sparse(shape, pattern, rng, a_density, b_density)
        program = build_spgemm_kernel(shape, pattern, a=a, b=b)
        engine = ENGINE_OF if forwarding else ENGINE_NO_OF
        _assert_bit_identical(program, engine)

    def test_trace_only_kernel_unchanged(self):
        # Without operand data every feed stays -1 and the simulator applies
        # the engine's worst-case formula — the pre-existing behaviour.
        program = build_spgemm_kernel(
            GemmShape(128, 128, 512), SparsityPattern.SPARSE_2_4
        )
        _assert_bit_identical(program, ENGINE_OF)

    def test_differing_overhead_sequences_force_fallback(self):
        # Craft A so the first output-tile row pair is fully dense while the
        # second has most K-blocks zeroed: blocks in different row pairs then
        # carry different feed-overhead sequences and must not be proven
        # shift-invariant against each other; equality must come from
        # stepping, not from an unsound skip.
        pattern = SparsityPattern.SPARSE_2_4
        shape = GemmShape(64, 32, 128)
        rng = np.random.default_rng(11)
        a, b = _random_dual_sparse(shape, pattern, rng)
        sparse_rows = slice(2 * TILE_M, 4 * TILE_M)
        # Zeroing 8 whole K-blocks of the second row pair halves the first
        # K-tile's occupied-block count (16 -> 8): merge overhead 2 vs 4.
        a[sparse_rows, 0:32] = 0.0
        program = build_spgemm_kernel(shape, pattern, a=a, b=b)

        feeds = {
            op.tile.feed_overhead
            for op in program.trace
            if op.tile is not None and op.tile.opcode.is_compute
        }
        assert len(feeds) > 1, "operands failed to produce distinct overheads"
        exact, fast = _assert_bit_identical(program, ENGINE_OF)
        # Both row pairs contribute blocks the detector cannot fuse, so at
        # least one block per distinct overhead profile is stepped.
        assert fast.fast_blocks_stepped >= 2

    def test_uniform_spgemm_reaches_high_coverage(self):
        # The padded layouts and issue-aligned blocks keep dense-random 2:4
        # operands in steady state: nearly every block is skipped, which is
        # what backs the benchmark's >= 8x speedup floor structurally.
        pattern = SparsityPattern.SPARSE_2_4
        shape = GemmShape(256, 256, 1024)
        rng = np.random.default_rng(7)
        a, b = _random_dual_sparse(shape, pattern, rng)
        program = build_spgemm_kernel(shape, pattern, a=a, b=b)
        exact, fast = _assert_bit_identical(program, ENGINE_OF)
        assert fast.fast_blocks_stepped + fast.fast_blocks_skipped == len(
            program.block_starts
        )
        assert fast.fast_path_coverage > 0.9
        # The exact path reports no fast-path activity at all.
        assert exact.fast_blocks_skipped == 0
        assert exact.fast_path_coverage == 0.0


class TestSuperPeriodKnob:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(MAX_SUPER_PERIOD_ENV, raising=False)
        assert resolve_max_super_period() == DEFAULT_MAX_SUPER_PERIOD

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(MAX_SUPER_PERIOD_ENV, "4")
        assert resolve_max_super_period() == 4

    @pytest.mark.parametrize("raw", ["zero", "", "0", "-3"])
    def test_invalid_values_rejected(self, monkeypatch, raw):
        monkeypatch.setenv(MAX_SUPER_PERIOD_ENV, raw)
        with pytest.raises(ConfigurationError):
            resolve_max_super_period()

    def test_tight_cap_still_exact(self):
        # A cap of 1 only allows directly adjacent block jumps; the result
        # must stay bit-identical, merely with lower coverage.
        pattern = SparsityPattern.SPARSE_2_4
        shape = GemmShape(64, 64, 256)
        rng = np.random.default_rng(3)
        a, b = _random_dual_sparse(shape, pattern, rng)
        program = build_spgemm_kernel(shape, pattern, a=a, b=b)
        simulator = CycleApproximateSimulator(engine=ENGINE_OF)
        exact = simulator.run(program.trace, mode="exact")
        capped = run_fast(
            default_machine(),
            ENGINE_OF,
            program.trace,
            program.block_starts,
            max_super_period=1,
        )
        assert capped is not None
        assert capped.core_cycles == exact.core_cycles
        assert capped.memory_counters == exact.memory_counters


class TestMemoKeyFeedParity:
    """The multicore memo key must distinguish feed-only trace differences."""

    machine = default_machine()

    def _key(self, program):
        return simulation_cache_key(program, self.machine, ENGINE_OF, "fast")

    def test_same_structure_different_feeds_distinct_keys(self):
        # Two kernels with identical op/address structure whose operands
        # differ only in K-block occupancy — same instruction stream, only
        # the feed-overhead column differs.  Replaying one's cached result
        # for the other would be wrong, so their keys must differ.
        pattern = SparsityPattern.SPARSE_2_4
        shape = GemmShape(32, 32, 128)
        rng = np.random.default_rng(5)
        a_full, b = _random_dual_sparse(shape, pattern, rng)
        # Zeroing 4 whole K-blocks drops the first K-tile's occupied-block
        # count from 16 to 12 and its merge overhead from 4 to 3 cycles.
        a_sparse = a_full.copy()
        a_sparse[:, 0:16] = 0.0

        dense_program = build_spgemm_kernel(shape, pattern, a=a_full, b=b)
        sparse_program = build_spgemm_kernel(shape, pattern, a=a_sparse, b=b)

        def signature(program):
            return [
                (op.kind, op.nbytes, op.tile.opcode if op.tile else None)
                for op in program.trace
            ]

        assert signature(dense_program) == signature(sparse_program)
        assert self._key(dense_program) != self._key(sparse_program)

    def test_equal_feeds_equal_keys(self):
        pattern = SparsityPattern.SPARSE_2_4
        shape = GemmShape(32, 32, 128)
        rng = np.random.default_rng(9)
        a, b = _random_dual_sparse(shape, pattern, rng)
        first = build_spgemm_kernel(shape, pattern, a=a, b=b)
        second = build_spgemm_kernel(shape, pattern, a=a, b=b)
        assert self._key(first) == self._key(second)

    def test_key_ignores_raw_values_with_equal_occupancy(self):
        # Scaling non-zeros changes the data but not the metadata
        # intersection, the addresses or the op stream — the simulation
        # outcome is identical, so the key may (and should) coincide.
        pattern = SparsityPattern.SPARSE_2_4
        shape = GemmShape(32, 32, 128)
        rng = np.random.default_rng(13)
        a, b = _random_dual_sparse(shape, pattern, rng)
        first = build_spgemm_kernel(shape, pattern, a=a, b=b)
        second = build_spgemm_kernel(shape, pattern, a=2.0 * a, b=b)
        assert self._key(first) == self._key(second)
