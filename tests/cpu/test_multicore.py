"""Tests for the multi-core simulation: arbiter, invariants, scaling shape."""

import pytest

from repro.analysis.runtime import resolve_engine
from repro.cpu.multicore import (
    MulticoreSimulationResult,
    SharedMemoryParams,
    arbitrate_bandwidth,
    simulate_multicore,
)
from repro.cpu.params import default_machine, memory_bound_machine
from repro.cpu.simulator import CycleApproximateSimulator
from repro.errors import SimulationError
from repro.kernels.sharding import shard_kernel
from repro.types import GemmShape, SparsityPattern

ENGINE = resolve_engine("VEGETA-S-16-2+OF+SPGEMM")

#: (kind, pattern) for every registered kernel the sharding layer covers.
KERNEL_KINDS = [
    ("gemm", SparsityPattern.DENSE_4_4),
    ("spmm", SparsityPattern.SPARSE_2_4),
    ("spmm", SparsityPattern.SPARSE_1_4),
    ("spgemm", SparsityPattern.SPARSE_2_4),
    ("spgemm", SparsityPattern.SPARSE_1_4),
]


class TestArbiter:
    def test_no_demand_runs_undilated(self):
        outcome = arbitrate_bandwidth(
            [1000, 500], [0, 0], [0, 0], dram_lines_per_cycle=1.0, l3_lines_per_cycle=2.0
        )
        assert outcome.finish_cycles == [1000, 500]
        assert outcome.makespan == 1000
        assert not outcome.contended

    def test_under_supply_finishes_at_private_cycles(self):
        # Two cores each demanding 0.25 lines/cycle against a supply of 1.
        outcome = arbitrate_bandwidth(
            [1000, 1000],
            [250, 250],
            [250, 250],
            dram_lines_per_cycle=1.0,
            l3_lines_per_cycle=2.0,
        )
        assert outcome.finish_cycles == [1000, 1000]
        assert not outcome.contended

    def test_oversubscription_dilates_proportionally(self):
        # Two cores each demanding the full DRAM supply: fair sharing halves
        # their progress, so both finish in ~2x their private time.
        outcome = arbitrate_bandwidth(
            [1000, 1000],
            [1000, 1000],
            [1000, 1000],
            dram_lines_per_cycle=1.0,
            l3_lines_per_cycle=10.0,
        )
        assert outcome.contended
        assert outcome.makespan == 2000

    def test_finished_core_releases_bandwidth(self):
        # A short bandwidth-hungry core and a long one: once the short core
        # drains, the long one speeds back up, so the makespan is far below
        # the fully-contended bound of 2x.
        outcome = arbitrate_bandwidth(
            [100, 10_000],
            [100, 10_000],
            [100, 10_000],
            dram_lines_per_cycle=1.0,
            l3_lines_per_cycle=10.0,
        )
        assert outcome.contended
        assert outcome.finish_cycles[0] < outcome.finish_cycles[1]
        assert outcome.makespan < int(2 * 10_000 * 0.75)

    def test_compute_only_core_unaffected_by_contention(self):
        outcome = arbitrate_bandwidth(
            [1000, 1000, 1000],
            [1000, 1000, 0],
            [1000, 1000, 0],
            dram_lines_per_cycle=1.0,
            l3_lines_per_cycle=10.0,
        )
        assert outcome.finish_cycles[2] == 1000
        assert outcome.finish_cycles[0] > 1000

    def test_core_only_dilated_by_resources_it_demands(self):
        # Core 0 uses only the (uncontended) L3 port; cores 1-2 fight over
        # DRAM.  Core 0 must finish at its private time despite the DRAM
        # shortfall.
        outcome = arbitrate_bandwidth(
            [1000, 1000, 1000],
            [0, 1000, 1000],
            [1000, 0, 0],
            dram_lines_per_cycle=1.0,
            l3_lines_per_cycle=10.0,
        )
        assert outcome.contended
        assert outcome.finish_cycles[0] == 1000
        assert outcome.finish_cycles[1] == 2000

    def test_long_uncontended_run_needs_few_steps(self):
        # Steps end at core completions, so even a multi-billion-cycle run
        # arbitrates in O(cores) iterations instead of tripping max_steps.
        outcome = arbitrate_bandwidth(
            [9_000_000_000],
            [0],
            [0],
            dram_lines_per_cycle=1.0,
            l3_lines_per_cycle=1.0,
        )
        assert outcome.makespan == 9_000_000_000

    def test_l3_port_can_be_the_bottleneck(self):
        outcome = arbitrate_bandwidth(
            [1000, 1000],
            [0, 0],
            [1000, 1000],
            dram_lines_per_cycle=10.0,
            l3_lines_per_cycle=1.0,
        )
        assert outcome.contended
        assert outcome.makespan == 2000

    def test_mismatched_vectors_rejected(self):
        with pytest.raises(SimulationError):
            arbitrate_bandwidth(
                [100], [1, 2], [1], dram_lines_per_cycle=1.0, l3_lines_per_cycle=1.0
            )

    def test_zero_cycle_cores_finish_immediately(self):
        outcome = arbitrate_bandwidth(
            [0, 100], [0, 10], [0, 10], dram_lines_per_cycle=1.0, l3_lines_per_cycle=2.0
        )
        assert outcome.finish_cycles == [0, 100]


class TestSingleCoreInvariant:
    """cores=1 multi-core simulation == the existing single-core path, bit for bit."""

    @pytest.mark.parametrize("kind,pattern", KERNEL_KINDS)
    def test_cycles_and_counters_bit_identical(self, kind, pattern):
        shape = GemmShape(m=64, n=64, k=512)
        sharded = shard_kernel(kind, shape, pattern, 1)
        program = sharded.programs[0]
        multi = simulate_multicore(sharded.programs, engine=ENGINE)
        single = CycleApproximateSimulator(engine=ENGINE).run(
            program.trace, block_starts=program.block_starts
        )
        assert multi.core_cycles == single.core_cycles
        assert multi.finish_cycles == [single.core_cycles]
        assert multi.per_core[0].memory_counters == single.memory_counters
        assert not multi.contended

    @pytest.mark.parametrize("kind,pattern", KERNEL_KINDS[:3])
    def test_invariant_holds_without_prefetch(self, kind, pattern):
        # The memory-bound machine maximises DRAM traffic; even then one
        # core's demand cannot oversubscribe the shared channel, because the
        # shared supply mirrors the private simulator's effective line rate.
        machine = memory_bound_machine()
        sharded = shard_kernel(kind, GemmShape(m=64, n=64, k=512), pattern, 1)
        program = sharded.programs[0]
        multi = simulate_multicore(sharded.programs, machine=machine, engine=ENGINE)
        single = CycleApproximateSimulator(machine=machine, engine=ENGINE).run(
            program.trace, block_starts=program.block_starts
        )
        assert multi.core_cycles == single.core_cycles
        assert multi.per_core[0].memory_counters == single.memory_counters
        assert not multi.contended

    def test_invariant_holds_for_non_default_line_size(self):
        # The shared supply and footprint accounting follow the machine's
        # cache line size, so the invariant is not tied to 64 B lines.
        from repro.cpu.params import CacheParams, MachineParams

        machine = MachineParams(
            l1=CacheParams(name="L1D", capacity_bytes=48 * 1024, line_bytes=128),
            l2=CacheParams(name="L2", capacity_bytes=2 * 1024 * 1024, line_bytes=128),
            prefetch_into_l2=False,
        )
        sharded = shard_kernel(
            "gemm", GemmShape(m=64, n=64, k=256), SparsityPattern.DENSE_4_4, 1
        )
        program = sharded.programs[0]
        multi = simulate_multicore(sharded.programs, machine=machine, engine=ENGINE)
        single = CycleApproximateSimulator(machine=machine, engine=ENGINE).run(
            program.trace, block_starts=program.block_starts
        )
        assert multi.core_cycles == single.core_cycles
        assert not multi.contended

    def test_exact_mode_matches_too(self):
        sharded = shard_kernel(
            "gemm", GemmShape(m=64, n=64, k=256), SparsityPattern.DENSE_4_4, 1
        )
        program = sharded.programs[0]
        multi = simulate_multicore(sharded.programs, engine=ENGINE, mode="exact")
        single = CycleApproximateSimulator(engine=ENGINE, mode="exact").run(
            program.trace
        )
        assert multi.core_cycles == single.core_cycles


class TestMulticoreScaling:
    """The acceptance-criteria scaling shape of the ISSUE."""

    def test_compute_bound_workload_scales_at_least_6x_on_8_cores(self):
        shape = GemmShape(m=256, n=256, k=1024)
        single = shard_kernel("gemm", shape, SparsityPattern.DENSE_4_4, 1).programs[0]
        baseline = CycleApproximateSimulator(engine=ENGINE).run(
            single.trace, block_starts=single.block_starts
        )
        sharded = shard_kernel("gemm", shape, SparsityPattern.DENSE_4_4, 8, "row-block")
        multi = simulate_multicore(sharded.programs, engine=ENGINE)
        speedup = multi.speedup_over(baseline.core_cycles)
        assert speedup >= 6.0
        assert not multi.contended

    def test_memory_bound_workload_is_bandwidth_limited_on_8_cores(self):
        machine = memory_bound_machine()
        shape = GemmShape(m=256, n=256, k=512)
        single = shard_kernel("gemm", shape, SparsityPattern.DENSE_4_4, 1).programs[0]
        baseline = CycleApproximateSimulator(machine=machine, engine=ENGINE).run(
            single.trace, block_starts=single.block_starts
        )
        sharded = shard_kernel("gemm", shape, SparsityPattern.DENSE_4_4, 8, "row-block")
        multi = simulate_multicore(sharded.programs, machine=machine, engine=ENGINE)
        speedup = multi.speedup_over(baseline.core_cycles)
        assert multi.contended
        assert speedup < 4.0  # far sub-linear: the shared channel saturates
        assert multi.bandwidth_utilization > 0.9

    def test_idle_cores_show_up_as_load_imbalance(self):
        # 16 cores row-block over an 8-row block grid: half the cores idle.
        shape = GemmShape(m=256, n=256, k=256)
        sharded = shard_kernel("gemm", shape, SparsityPattern.DENSE_4_4, 16, "row-block")
        multi = simulate_multicore(sharded.programs, engine=ENGINE)
        assert sharded.tiles_per_core.count(0) == 8
        assert multi.load_imbalance > 1.9

    def test_2d_cyclic_beats_row_block_when_rows_run_out(self):
        shape = GemmShape(m=256, n=256, k=256)
        row = simulate_multicore(
            shard_kernel("gemm", shape, SparsityPattern.DENSE_4_4, 16, "row-block").programs,
            engine=ENGINE,
        )
        cyclic = simulate_multicore(
            shard_kernel("gemm", shape, SparsityPattern.DENSE_4_4, 16, "2d-cyclic").programs,
            engine=ENGINE,
        )
        assert cyclic.core_cycles < row.core_cycles


class TestSharedMemoryParams:
    def test_invalid_params_rejected(self):
        with pytest.raises(SimulationError):
            SharedMemoryParams(l3_capacity_bytes=0)
        with pytest.raises(SimulationError):
            SharedMemoryParams(l3_bytes_per_cycle=-1.0)
        with pytest.raises(SimulationError):
            SharedMemoryParams(dram_bandwidth_gbps=0.0)

    def test_default_supply_mirrors_private_effective_rate(self):
        machine = default_machine()
        shared = SharedMemoryParams()
        # 94 GB/s at 2 GHz = 47 B/cycle; the private model charges whole
        # cycles per 64 B line, so the effective shared rate is 1 line/cycle.
        assert shared.dram_lines_per_cycle(machine) == 1.0

    def test_explicit_bandwidth_uses_nominal_rate(self):
        machine = default_machine()
        shared = SharedMemoryParams(dram_bandwidth_gbps=64.0)
        assert shared.dram_lines_per_cycle(machine) == pytest.approx(0.5)

    def test_empty_program_list_rejected(self):
        with pytest.raises(SimulationError):
            simulate_multicore([])

    def test_result_reports_per_core_state(self):
        sharded = shard_kernel(
            "gemm", GemmShape(m=64, n=64, k=256), SparsityPattern.DENSE_4_4, 2
        )
        multi = simulate_multicore(sharded.programs, engine=ENGINE)
        assert isinstance(multi, MulticoreSimulationResult)
        assert multi.cores == 2
        assert len(multi.private_cycles) == 2
        assert multi.runtime_seconds > 0
        assert multi.memory_counters["l1_hits"] == sum(
            result.memory_counters["l1_hits"] for result in multi.per_core
        )
