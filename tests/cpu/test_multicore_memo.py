"""Memoization-equivalence tests: memoized multicore == unmemoized, bit for bit."""

import json

import pytest

from repro.analysis.runtime import resolve_engine
from repro.cpu.multicore import (
    clear_simulation_memo,
    memoization_enabled,
    payload_to_result,
    result_to_payload,
    simulate_multicore,
    simulate_program_cached,
    simulation_cache_key,
)
from repro.cpu.params import default_machine, memory_bound_machine
from repro.cpu.simulator import CycleApproximateSimulator
from repro.kernels.sharding import shard_kernel
from repro.types import GemmShape, SparsityPattern

ENGINE = resolve_engine("VEGETA-S-16-2+OF+SPGEMM")

KERNEL_KINDS = [
    ("gemm", SparsityPattern.DENSE_4_4),
    ("spmm", SparsityPattern.SPARSE_2_4),
    ("spgemm", SparsityPattern.SPARSE_2_4),
]

STRATEGIES = ("row-block", "column-block", "2d-cyclic")


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_simulation_memo()
    yield
    clear_simulation_memo()


def assert_bit_identical(a, b):
    assert a.core_cycles == b.core_cycles
    assert a.finish_cycles == b.finish_cycles
    assert a.dram_lines == b.dram_lines
    assert a.l3_hit_lines == b.l3_hit_lines
    assert a.contended == b.contended
    assert a.memory_counters == b.memory_counters
    for left, right in zip(a.per_core, b.per_core):
        assert left.core_cycles == right.core_cycles
        assert left.memory_counters == right.memory_counters
        assert left.trace_summary == right.trace_summary
        assert left.engine_makespan_cycles == right.engine_makespan_cycles
        assert left.tile_compute_ops == right.tile_compute_ops


class TestMemoEquivalence:
    """The ISSUE's core invariant: replayed cores match simulated cores exactly."""

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("kind,pattern", KERNEL_KINDS)
    def test_fast_mode_bit_identical(self, kind, pattern, strategy):
        sharded = shard_kernel(kind, GemmShape(128, 128, 512), pattern, 4, strategy)
        off = simulate_multicore(sharded.programs, engine=ENGINE, memo=False)
        clear_simulation_memo()
        on = simulate_multicore(sharded.programs, engine=ENGINE, memo=True)
        assert_bit_identical(off, on)

    @pytest.mark.parametrize("kind,pattern", KERNEL_KINDS)
    def test_exact_mode_bit_identical(self, kind, pattern):
        sharded = shard_kernel(kind, GemmShape(64, 64, 256), pattern, 4, "row-block")
        off = simulate_multicore(sharded.programs, engine=ENGINE, mode="exact", memo=False)
        clear_simulation_memo()
        on = simulate_multicore(sharded.programs, engine=ENGINE, mode="exact", memo=True)
        assert_bit_identical(off, on)

    def test_memory_bound_machine_bit_identical(self):
        machine = memory_bound_machine()
        sharded = shard_kernel(
            "gemm", GemmShape(128, 128, 256), SparsityPattern.DENSE_4_4, 8, "row-block"
        )
        off = simulate_multicore(
            sharded.programs, machine=machine, engine=ENGINE, memo=False
        )
        clear_simulation_memo()
        on = simulate_multicore(
            sharded.programs, machine=machine, engine=ENGINE, memo=True
        )
        assert_bit_identical(off, on)

    def test_worker_pool_bit_identical(self):
        sharded = shard_kernel(
            "gemm", GemmShape(128, 128, 256), SparsityPattern.DENSE_4_4, 4, "2d-cyclic"
        )
        serial = simulate_multicore(sharded.programs, engine=ENGINE, memo=False)
        clear_simulation_memo()
        pooled = simulate_multicore(sharded.programs, engine=ENGINE, jobs=2)
        assert_bit_identical(serial, pooled)


class TestMemoMachinery:
    def test_equivalent_cores_share_one_simulation(self, monkeypatch):
        sharded = shard_kernel(
            "gemm", GemmShape(256, 256, 256), SparsityPattern.DENSE_4_4, 8, "row-block"
        )
        machine = default_machine()
        keys = {
            simulation_cache_key(program, machine, ENGINE, "fast")
            for program in sharded.programs
        }
        runs = []
        original = CycleApproximateSimulator.run

        def counting_run(self, trace, **kwargs):
            runs.append(len(trace))
            return original(self, trace, **kwargs)

        monkeypatch.setattr(CycleApproximateSimulator, "run", counting_run)
        simulate_multicore(sharded.programs, engine=ENGINE)
        assert len(runs) == len(keys) < sharded.cores

    def test_payload_survives_json_roundtrip(self):
        program = shard_kernel(
            "spmm", GemmShape(64, 64, 256), SparsityPattern.SPARSE_2_4, 1
        ).programs[0]
        result = CycleApproximateSimulator(engine=ENGINE).run(
            program.trace, block_starts=program.block_starts
        )
        payload = json.loads(json.dumps(result_to_payload(result)))
        replayed = payload_to_result(payload, result.machine, ENGINE)
        assert replayed.core_cycles == result.core_cycles
        assert replayed.memory_counters == result.memory_counters
        assert replayed.trace_summary == result.trace_summary
        assert replayed.engine_busy_cycles == result.engine_busy_cycles

    def test_persistent_store_feeds_fresh_processes(self):
        store = {}

        class Store:
            def get(self, key):
                return store.get(key)

            def put(self, key, payload):
                store[key] = payload

        sharded = shard_kernel(
            "gemm", GemmShape(128, 128, 256), SparsityPattern.DENSE_4_4, 4, "row-block"
        )
        first = simulate_multicore(sharded.programs, engine=ENGINE, block_cache=Store())
        assert store  # representatives were persisted
        clear_simulation_memo()  # a fresh process would start empty
        second = simulate_multicore(sharded.programs, engine=ENGINE, block_cache=Store())
        assert_bit_identical(first, second)

    def test_simulate_program_cached_matches_direct_run(self):
        program = shard_kernel(
            "spgemm", GemmShape(64, 64, 256), SparsityPattern.SPARSE_2_4, 1
        ).programs[0]
        direct = CycleApproximateSimulator(engine=ENGINE).run(
            program.trace, block_starts=program.block_starts
        )
        cached_cold = simulate_program_cached(program, engine=ENGINE)
        cached_warm = simulate_program_cached(program, engine=ENGINE)
        for candidate in (cached_cold, cached_warm):
            assert candidate.core_cycles == direct.core_cycles
            assert candidate.memory_counters == direct.memory_counters

    def test_env_variable_disables_memoization(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_MEMO", raising=False)
        assert memoization_enabled()
        monkeypatch.setenv("REPRO_NO_MEMO", "1")
        assert not memoization_enabled()
        monkeypatch.setenv("REPRO_NO_MEMO", "0")
        assert memoization_enabled()
        # Explicit arguments win over the environment.
        monkeypatch.setenv("REPRO_NO_MEMO", "1")
        assert memoization_enabled(True)

    def test_keys_cover_machine_engine_and_mode(self):
        program = shard_kernel(
            "gemm", GemmShape(64, 64, 256), SparsityPattern.DENSE_4_4, 1
        ).programs[0]
        default_key = simulation_cache_key(program, default_machine(), ENGINE, "fast")
        assert default_key is not None
        assert default_key != simulation_cache_key(
            program, memory_bound_machine(), ENGINE, "fast"
        )
        assert default_key != simulation_cache_key(
            program, default_machine(), ENGINE, "exact"
        )
        assert default_key != simulation_cache_key(
            program, default_machine(), resolve_engine("VEGETA-D-1-2"), "fast"
        )
        assert default_key != simulation_cache_key(
            program, default_machine(), None, "fast"
        )
