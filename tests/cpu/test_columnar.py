"""Tests for the columnar trace representation and its vectorised views."""

import pickle

import numpy as np
import pytest

from repro.core import isa
from repro.core.registers import treg
from repro.cpu.cache import Cache
from repro.cpu.columnar import ColumnarTrace, TraceBuilder, lru_outcome_bits
from repro.cpu.fastsim import lower_signatures, op_signature
from repro.cpu.params import CacheParams, default_machine
from repro.cpu.trace import (
    TraceOp,
    TraceOpKind,
    summarize_trace,
    trace_memory_footprint,
    tile_op,
    vector_fma,
)
from repro.kernels.gemm import build_dense_gemm_kernel
from repro.kernels.spgemm import build_spgemm_kernel
from repro.kernels.spmm import build_spmm_kernel
from repro.kernels.vector import build_vector_gemm_kernel
from repro.types import GemmShape, SparsityPattern


def all_programs():
    shape = GemmShape(64, 64, 256)
    return [
        build_dense_gemm_kernel(shape),
        build_dense_gemm_kernel(shape, variant="listing1"),
        build_spmm_kernel(shape, SparsityPattern.SPARSE_2_4),
        build_spmm_kernel(shape, SparsityPattern.SPARSE_1_4),
        build_spgemm_kernel(shape, SparsityPattern.SPARSE_2_4),
        build_vector_gemm_kernel(GemmShape(16, 64, 64)),
    ]


class TestColumnarParity:
    """The columnar views agree with the op-by-op reference computations."""

    @pytest.mark.parametrize("program", all_programs(), ids=lambda p: p.label)
    def test_materialised_ops_roundtrip(self, program):
        # Re-materialising from columns alone reproduces the op objects the
        # legacy builders would have produced, field for field.
        trace = program.trace
        assert trace.has_columns
        rebuilt = ColumnarTrace(columns=trace.columns, labels=trace.labels)
        assert list(rebuilt) == list(trace)

    @pytest.mark.parametrize("program", all_programs(), ids=lambda p: p.label)
    def test_signature_ids_match_interning(self, program):
        ops = list(program.trace)
        table = {}
        expected = []
        for op in ops:
            key = op_signature(op)
            expected.append(table.setdefault(key, len(table)))
        assert np.array_equal(program.trace.signature_ids(), np.array(expected))

    @pytest.mark.parametrize("program", all_programs(), ids=lambda p: p.label)
    def test_summaries_and_footprints(self, program):
        ops = list(program.trace)
        assert program.trace.summarize() == summarize_trace(ops)
        assert program.trace.summarize_span(3, 41) == summarize_trace(ops[3:41])
        assert program.trace.memory_regions() == sorted(
            {
                (op.tile.memory.address, op.tile.memory.nbytes)
                if op.kind is TraceOpKind.TILE and op.tile.memory is not None
                else (op.address, op.nbytes)
                for op in ops
                if (op.kind is TraceOpKind.TILE and op.tile.memory is not None)
                or op.address is not None
            }
        )

    def test_from_ops_equals_builder_columns(self):
        program = build_dense_gemm_kernel(GemmShape(64, 64, 128))
        converted = ColumnarTrace.from_ops(list(program.trace))
        assert np.array_equal(converted.columns, program.trace.columns)
        assert converted.labels == program.trace.labels


class TestDeterministicIds:
    def test_first_appearance_order(self):
        ids = build_dense_gemm_kernel(GemmShape(64, 64, 128)).trace.signature_ids()
        seen = set()
        expected_next = 0
        for value in ids:
            if value not in seen:
                assert value == expected_next
                seen.add(value)
                expected_next += 1

    def test_lower_signatures_dispatches_to_columns(self):
        program = build_dense_gemm_kernel(GemmShape(64, 64, 128))
        assert np.array_equal(
            lower_signatures(program.trace), lower_signatures(list(program.trace))
        )


class TestGracefulFallback:
    def test_inexpressible_op_keeps_sequence_behaviour(self):
        # A three-source FMA does not fit the two-register columns; the trace
        # must still behave as a sequence, with the vectorised views off.
        ops = [vector_fma(0, (1, 2, 3)), vector_fma(0, (1, 2, 3))]
        trace = ColumnarTrace.from_ops(ops)
        assert not trace.has_columns
        assert list(trace) == ops
        assert len(trace) == 2

    def test_labelled_tile_op_falls_back(self):
        # Builders never label the TraceOp wrapper of a tile instruction;
        # foreign traces that do cannot be expressed columnar.
        op = tile_op(isa.tile_load_t(treg(0), 0x100, "load"), label="wrapper")
        trace = ColumnarTrace.from_ops([op])
        assert not trace.has_columns
        assert trace[0] == op


class TestLazyMaterialisation:
    def test_ops_span_fills_only_the_span(self):
        program = build_dense_gemm_kernel(GemmShape(64, 64, 256))
        trace = ColumnarTrace(
            columns=program.trace.columns, labels=program.trace.labels
        )
        buffer = trace.ops_span(10, 20)
        assert all(isinstance(op, TraceOp) for op in buffer[10:20])
        assert buffer[0] is None and buffer[25] is None
        # Full materialisation still works afterwards and agrees.
        assert trace.ops()[10:20] == buffer[10:20]

    def test_pickle_ships_columns_not_ops(self):
        program = build_dense_gemm_kernel(GemmShape(64, 64, 128))
        trace = program.trace
        trace.ops()  # populate the cache
        clone = pickle.loads(pickle.dumps(trace))
        assert clone._ops is None
        assert list(clone) == list(trace)


class TestLruOutcomeReplay:
    def test_matches_cache_model_on_random_streams(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            num_sets = int(rng.integers(2, 16))
            associativity = int(rng.integers(1, 5))
            ids = rng.integers(0, num_sets * associativity * 3, size=300)
            cache = Cache(
                CacheParams(
                    name="t",
                    capacity_bytes=num_sets * associativity * 64,
                    associativity=associativity,
                    line_bytes=64,
                )
            )
            reference = np.array([cache.access(int(i) * 64) for i in ids])
            assert np.array_equal(
                reference, lru_outcome_bits(ids, num_sets, associativity)
            )


class TestSimulationKey:
    def test_rebuilt_kernel_shares_key(self):
        machine = default_machine()
        first = build_dense_gemm_kernel(GemmShape(64, 64, 256))
        second = build_dense_gemm_kernel(GemmShape(64, 64, 256))
        assert first.trace.simulation_key(machine, first.block_starts) == (
            second.trace.simulation_key(machine, second.block_starts)
        )

    def test_key_sees_structural_differences(self):
        machine = default_machine()
        base = build_dense_gemm_kernel(GemmShape(64, 64, 256))
        other = build_dense_gemm_kernel(GemmShape(64, 64, 512))
        assert base.trace.simulation_key(machine, base.block_starts) != (
            other.trace.simulation_key(machine, other.block_starts)
        )

    def test_key_includes_block_hints(self):
        machine = default_machine()
        program = build_dense_gemm_kernel(GemmShape(64, 64, 256))
        with_hints = program.trace.simulation_key(machine, program.block_starts)
        without = program.trace.simulation_key(machine, None)
        assert with_hints != without

    def test_empty_trace_has_a_key(self):
        empty = TraceBuilder().finish()
        assert empty.simulation_key(default_machine(), None) is not None
