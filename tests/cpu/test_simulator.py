"""Tests for the cycle-approximate trace-driven simulator."""

import dataclasses

import pytest

from repro.core import isa
from repro.core.engine import get_engine
from repro.core.registers import mreg, treg, ureg
from repro.cpu.params import CoreParams, MachineParams, default_machine
from repro.cpu.simulator import CycleApproximateSimulator
from repro.cpu.trace import scalar_op, tile_op, vector_fma, vector_load
from repro.errors import SimulationError
from repro.kernels.gemm import build_dense_gemm_kernel
from repro.kernels.spmm import build_spmm_kernel
from repro.types import GemmShape, SparsityPattern


def _simple_gemm_trace(compute_count=4):
    """Loads followed by independent GEMMs into distinct accumulators."""
    trace = [
        tile_op(isa.tile_load_t(treg(4), 0x1000)),
        tile_op(isa.tile_load_t(treg(5), 0x2000)),
    ]
    for index in range(compute_count):
        trace.append(tile_op(isa.tile_gemm(treg(index % 4), treg(4), treg(5))))
    return trace


class TestBasicBehaviour:
    def test_empty_trace(self):
        result = CycleApproximateSimulator(engine=get_engine("VEGETA-D-1-2")).run([])
        assert result.core_cycles >= 0
        assert result.tile_compute_ops == 0

    def test_scalar_only_trace_is_issue_bound(self):
        simulator = CycleApproximateSimulator()
        result = simulator.run([scalar_op() for _ in range(400)])
        # 4-wide issue: at least 100 cycles.
        assert result.core_cycles >= 100
        assert result.core_cycles < 200

    def test_compute_requires_engine(self):
        simulator = CycleApproximateSimulator(engine=None)
        with pytest.raises(SimulationError):
            simulator.run([tile_op(isa.tile_gemm(treg(0), treg(1), treg(2)))])

    def test_result_counts_match_trace(self):
        trace = _simple_gemm_trace(6)
        result = CycleApproximateSimulator(engine=get_engine("VEGETA-D-1-2")).run(trace)
        assert result.tile_compute_ops == 6
        assert result.instructions == len(trace)
        assert result.engine_busy_cycles == 6 * 16

    def test_runtime_seconds_positive(self):
        result = CycleApproximateSimulator(engine=get_engine("VEGETA-D-1-2")).run(
            _simple_gemm_trace()
        )
        assert result.runtime_seconds > 0
        assert 0 < result.ipc


class TestDependences:
    def test_compute_waits_for_operand_loads(self):
        engine = get_engine("VEGETA-D-1-2")
        only_compute = [tile_op(isa.tile_gemm(treg(0), treg(4), treg(5)))]
        with_loads = _simple_gemm_trace(1)
        fast = CycleApproximateSimulator(engine=engine).run(only_compute)
        slow = CycleApproximateSimulator(engine=engine).run(with_loads)
        assert slow.core_cycles > fast.core_cycles

    def test_accumulator_chain_slower_than_independent(self):
        engine = get_engine("VEGETA-S-16-2")
        loads = [
            tile_op(isa.tile_load_t(treg(4), 0x1000)),
            tile_op(isa.tile_load_t(treg(5), 0x2000)),
        ]
        chained = loads + [
            tile_op(isa.tile_gemm(treg(0), treg(4), treg(5))) for _ in range(8)
        ]
        independent = loads + [
            tile_op(isa.tile_gemm(treg(i % 4), treg(4), treg(5))) for i in range(8)
        ]
        chained_cycles = CycleApproximateSimulator(engine=engine).run(chained).core_cycles
        independent_cycles = (
            CycleApproximateSimulator(engine=engine).run(independent).core_cycles
        )
        assert chained_cycles > independent_cycles

    def test_output_forwarding_speeds_up_chains(self):
        base = get_engine("VEGETA-S-16-2")
        trace = [
            tile_op(isa.tile_load_t(treg(4), 0x1000)),
            tile_op(isa.tile_load_t(treg(5), 0x2000)),
        ] + [tile_op(isa.tile_gemm(treg(0), treg(4), treg(5))) for _ in range(16)]
        without = CycleApproximateSimulator(engine=base).run(trace).core_cycles
        with_of = (
            CycleApproximateSimulator(engine=base.with_output_forwarding())
            .run(trace)
            .core_cycles
        )
        assert with_of < without

    def test_store_waits_for_compute(self):
        engine = get_engine("VEGETA-D-1-2")
        trace = _simple_gemm_trace(1) + [tile_op(isa.tile_store_t(0x8000, treg(0)))]
        result = CycleApproximateSimulator(engine=engine).run(trace)
        # The store completes after the compute's engine latency has elapsed.
        assert result.core_cycles >= engine.instruction_latency * 4

    def test_sparse_compute_waits_for_metadata(self):
        engine = get_engine("VEGETA-S-16-2")
        without_md = [
            tile_op(isa.tile_load_t(treg(2), 0x1000)),
            tile_op(isa.tile_load_u(ureg(2), 0x2000)),
            tile_op(isa.tile_spmm_u(treg(0), treg(2), ureg(2))),
        ]
        with_md = [
            tile_op(isa.tile_load_t(treg(2), 0x1000)),
            tile_op(isa.tile_load_u(ureg(2), 0x2000)),
            tile_op(isa.tile_load_m(mreg(2), 0x40000)),
            tile_op(isa.tile_spmm_u(treg(0), treg(2), ureg(2))),
        ]
        a = CycleApproximateSimulator(engine=engine).run(without_md).core_cycles
        b = CycleApproximateSimulator(engine=engine).run(with_md).core_cycles
        assert b >= a


class TestEngineComparisons:
    def test_rasa_sm_slower_than_rasa_dm_on_dense_kernel(self):
        shape = GemmShape(m=64, n=64, k=256)
        program = build_dense_gemm_kernel(shape)
        sm = CycleApproximateSimulator(engine=get_engine("VEGETA-D-1-1")).run(program.trace)
        dm = CycleApproximateSimulator(engine=get_engine("VEGETA-D-1-2")).run(program.trace)
        assert sm.core_cycles > dm.core_cycles

    def test_sparse_kernel_faster_than_dense_on_sparse_engine(self):
        shape = GemmShape(m=64, n=64, k=512)
        dense_program = build_dense_gemm_kernel(shape)
        sparse_program = build_spmm_kernel(shape, SparsityPattern.SPARSE_2_4)
        engine = get_engine("VEGETA-S-16-2").with_output_forwarding()
        dense_cycles = CycleApproximateSimulator(engine=engine).run(dense_program.trace).core_cycles
        sparse_cycles = CycleApproximateSimulator(engine=engine).run(sparse_program.trace).core_cycles
        assert sparse_cycles < dense_cycles
        assert dense_cycles / sparse_cycles > 1.5

    def test_1_4_kernel_faster_than_2_4(self):
        shape = GemmShape(m=64, n=64, k=512)
        engine = get_engine("VEGETA-S-16-2").with_output_forwarding()
        two_four = CycleApproximateSimulator(engine=engine).run(
            build_spmm_kernel(shape, SparsityPattern.SPARSE_2_4).trace
        )
        one_four = CycleApproximateSimulator(engine=engine).run(
            build_spmm_kernel(shape, SparsityPattern.SPARSE_1_4).trace
        )
        assert one_four.core_cycles < two_four.core_cycles


class TestVectorPath:
    def test_vector_fma_throughput_limits_runtime(self):
        machine = default_machine()
        trace = [vector_fma(0, (1,)) for _ in range(100)]
        result = CycleApproximateSimulator(machine=machine).run(trace)
        # 0.5 FMAs per cycle -> at least 200 cycles.
        assert result.core_cycles >= 100 / machine.core.vector_fma_per_cycle

    def test_vector_load_feeds_fma(self):
        trace = [vector_load(1, 0x1000), vector_fma(0, (1,))]
        result = CycleApproximateSimulator().run(trace)
        assert result.core_cycles > 1

    def test_engine_clock_ratio_slows_tile_compute(self):
        fast_core = dataclasses.replace(
            default_machine().core, matrix_engine_frequency_ghz=2.0
        )
        fast = MachineParams(core=fast_core)
        engine = get_engine("VEGETA-D-1-2")
        trace = _simple_gemm_trace(8)
        slow_cycles = CycleApproximateSimulator(engine=engine).run(trace).core_cycles
        fast_cycles = (
            CycleApproximateSimulator(machine=fast, engine=engine).run(trace).core_cycles
        )
        assert fast_cycles < slow_cycles


class TestStructuralLimits:
    def test_small_rob_increases_runtime(self):
        small_rob_core = dataclasses.replace(default_machine().core, rob_entries=8)
        small = MachineParams(core=small_rob_core)
        engine = get_engine("VEGETA-D-1-2")
        program = build_dense_gemm_kernel(GemmShape(m=64, n=64, k=128))
        baseline = CycleApproximateSimulator(engine=engine).run(program.trace).core_cycles
        constrained = (
            CycleApproximateSimulator(machine=small, engine=engine)
            .run(program.trace)
            .core_cycles
        )
        assert constrained >= baseline

    def test_engine_utilization_bounded(self):
        program = build_dense_gemm_kernel(GemmShape(m=64, n=64, k=256))
        result = CycleApproximateSimulator(engine=get_engine("VEGETA-D-1-2")).run(program.trace)
        assert 0.0 < result.engine_utilization <= 1.0
