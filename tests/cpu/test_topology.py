"""Tests for the recursive bandwidth topology (tree, placement, arbiter).

The load-bearing invariant: the recursive model with one level and flat
parameters is *bit-identical* — cycles, cache counters, contention flags —
to the pre-refactor two-resource arbiter.  The reference implementation of
that arbiter (and the flat shared-L3 analytic that fed it) is embedded
below verbatim, so the equivalence is checked against the real pre-refactor
math, not against the refactored code itself.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.runtime import resolve_engine
from repro.cpu.multicore import (
    SharedMemoryParams,
    _footprint_line_array,
    arbitrate_bandwidth,
    clear_simulation_memo,
    simulate_multicore,
)
from repro.cpu.params import (
    TOPOLOGY_PRESETS,
    chiplet_machine,
    default_machine,
    dual_socket_machine,
    flat_topology,
    get_topology,
    memory_bound_machine,
    topology_names,
)
from repro.cpu.simulator import CycleApproximateSimulator
from repro.cpu.topology import (
    TopologyNode,
    arbitrate_topology,
    place_cores,
    resolve_traffic,
)
from repro.errors import ConfigurationError, SimulationError
from repro.kernels.sharding import shard_kernel
from repro.types import GemmShape, SparsityPattern

ENGINE = resolve_engine("VEGETA-S-16-2+OF+SPGEMM")

#: Every kernel kind x partition strategy the flat-equivalence test pins.
KERNEL_KINDS = [
    ("gemm", SparsityPattern.DENSE_4_4),
    ("spmm", SparsityPattern.SPARSE_2_4),
    ("spgemm", SparsityPattern.SPARSE_2_4),
]
STRATEGIES = ("row-block", "column-block", "2d-cyclic")


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_simulation_memo()
    yield
    clear_simulation_memo()


# -- the pre-refactor reference implementation --------------------------------


def legacy_arbitrate(
    core_cycles,
    dram_lines,
    l3_lines,
    *,
    dram_lines_per_cycle,
    l3_lines_per_cycle,
):
    """The pre-refactor two-resource fluid arbiter, kept verbatim."""
    cores = len(core_cycles)
    dram_rates = [
        dram_lines[i] / core_cycles[i] if core_cycles[i] else 0.0
        for i in range(cores)
    ]
    l3_rates = [
        l3_lines[i] / core_cycles[i] if core_cycles[i] else 0.0
        for i in range(cores)
    ]
    remaining = [float(cycles) for cycles in core_cycles]
    finish = [0.0] * cores
    active = [i for i in range(cores) if remaining[i] > 0]
    wall = 0.0
    contended = False
    while active:
        dram_demand = sum(dram_rates[i] for i in active)
        l3_demand = sum(l3_rates[i] for i in active)
        dram_throttle = (
            min(1.0, dram_lines_per_cycle / dram_demand) if dram_demand > 0 else 1.0
        )
        l3_throttle = (
            min(1.0, l3_lines_per_cycle / l3_demand) if l3_demand > 0 else 1.0
        )
        if min(dram_throttle, l3_throttle) < 1.0:
            contended = True
        factors = {}
        for i in active:
            factor = 1.0
            if dram_rates[i] > 0.0:
                factor = min(factor, dram_throttle)
            if l3_rates[i] > 0.0:
                factor = min(factor, l3_throttle)
            factors[i] = factor
        step = min(remaining[i] / factors[i] for i in active)
        wall += step
        still_active = []
        for i in active:
            remaining[i] -= factors[i] * step
            if remaining[i] <= 1e-9:
                remaining[i] = 0.0
                finish[i] = wall
            else:
                still_active.append(i)
        active = still_active
    finish_cycles = [
        int(math.ceil(value - 1e-6)) if value > 0 else 0 for value in finish
    ]
    makespan = max(finish_cycles) if finish_cycles else 0
    return finish_cycles, makespan, contended


def legacy_flat_filter(private_dram, footprints, line_bytes, l3_capacity_bytes):
    """The pre-refactor flat shared-L3 capacity analytic, kept verbatim.

    Returns (dram_lines, l3_hit_lines); the shared-L3 port demand stays the
    unfiltered private line counts (a hit still consumed the port).
    """
    combined_lines = (
        int(np.unique(np.concatenate(footprints)).size) if footprints else 0
    )
    combined_bytes = combined_lines * line_bytes
    fit = (
        min(1.0, l3_capacity_bytes / combined_bytes) if combined_bytes else 1.0
    )
    dram_lines, l3_hit_lines = [], []
    for lines, footprint in zip(private_dram, footprints):
        capacity_misses = max(0, lines - int(footprint.size))
        hits = int(capacity_misses * fit)
        l3_hit_lines.append(hits)
        dram_lines.append(lines - hits)
    return dram_lines, l3_hit_lines


# -- tree structure -----------------------------------------------------------


class TestTopologyNode:
    def test_leaf_and_interior_shape_is_enforced(self):
        with pytest.raises(SimulationError):
            TopologyNode(name="x", level="l3")  # neither children nor cores
        leaf = TopologyNode(name="leaf", level="l3", cores=4)
        with pytest.raises(SimulationError):
            TopologyNode(name="x", level="dram", children=(leaf,), cores=4)

    def test_parameter_validation(self):
        with pytest.raises(SimulationError):
            TopologyNode(name="", level="l3", cores=4)
        with pytest.raises(SimulationError):
            TopologyNode(name="x", level="l3", cores=4, capacity_bytes=0)
        with pytest.raises(SimulationError):
            TopologyNode(name="x", level="l3", cores=4, bytes_per_cycle=-1.0)
        with pytest.raises(SimulationError):
            TopologyNode(name="x", level="dram", cores=4, bandwidth_gbps=0.0)
        with pytest.raises(SimulationError):
            TopologyNode(name="x", level="l3", cores=4, bandwidth_scale=0.0)

    def test_duplicate_names_rejected(self):
        leaves = tuple(
            TopologyNode(name="slice", level="l3", cores=2) for _ in range(2)
        )
        with pytest.raises(SimulationError, match="duplicate"):
            TopologyNode(name="dram", level="dram", children=leaves)

    def test_walk_paths_and_structure(self):
        tree = dual_socket_machine()
        paths = [path for path, _ in tree.walk()]
        assert paths[0] == "dram"
        assert "dram/socket0/l3-00" in paths
        assert "dram/socket1/l3-11" in paths
        assert len(tree.leaves()) == 4
        assert tree.total_cores == 128
        assert tree.depth == 3
        assert tree.levels() == ["l3", "interconnect", "dram"]

    def test_round_trip_through_plain_data(self):
        for factory in (flat_topology, dual_socket_machine, chiplet_machine):
            tree = factory()
            assert TopologyNode.from_dict(tree.to_dict()) == tree

    def test_supply_resolution_matches_shared_memory_params(self):
        # The one-level tree must resolve the exact same lines/cycle supplies
        # as the flat parameter block it replaces, on every machine.
        for machine in (default_machine(), memory_bound_machine()):
            for shared in (
                SharedMemoryParams(),
                SharedMemoryParams(dram_bandwidth_gbps=100.0),
            ):
                tree = shared.to_topology(4)
                (l3_node,) = tree.children
                assert tree.lines_per_cycle(machine) == shared.dram_lines_per_cycle(
                    machine
                )
                assert l3_node.lines_per_cycle(machine) == shared.l3_lines_per_cycle(
                    machine
                )

    def test_bandwidth_scale_multiplies_the_mirrored_rate(self):
        machine = default_machine()
        base = TopologyNode(name="a", level="dram", cores=1)
        scaled = TopologyNode(name="b", level="dram", cores=1, bandwidth_scale=2.0)
        assert scaled.lines_per_cycle(machine) == 2.0 * base.lines_per_cycle(machine)


class TestPresets:
    def test_registry(self):
        assert topology_names() == ["flat", "dual-socket", "chiplet"]
        for name in topology_names():
            assert get_topology(name).total_cores == 128
        assert set(TOPOLOGY_PRESETS) == set(topology_names())

    def test_unknown_preset_names_the_known_ones(self):
        with pytest.raises(ConfigurationError, match="dual-socket"):
            get_topology("torus")

    def test_preset_depths(self):
        assert flat_topology().depth == 2
        assert dual_socket_machine().depth == 3
        assert chiplet_machine().depth == 3

    def test_every_preset_level_supplies_the_mirrored_rate(self):
        # The basis of the cores=1 invariance: no level of any preset
        # supplies less than the private simulator's own DRAM line rate, so
        # a single core can never oversubscribe any path.
        for machine in (default_machine(), memory_bound_machine()):
            mirror = SharedMemoryParams().dram_lines_per_cycle(machine)
            for name in topology_names():
                for _, node in get_topology(name).walk():
                    assert node.lines_per_cycle(machine) >= mirror


# -- core placement -----------------------------------------------------------


class TestPlacement:
    def test_single_core_lands_on_the_first_leaf(self):
        for name in topology_names():
            placement = place_cores(get_topology(name), 1)
            assert placement.leaf_index == (0,)

    def test_flat_topology_is_one_domain(self):
        placement = place_cores(flat_topology(), 128)
        assert set(placement.leaf_index) == {0}
        assert placement.paths[0] == "l3"

    def test_full_dual_socket_split_is_even_and_contiguous(self):
        placement = place_cores(dual_socket_machine(), 128)
        assert placement.domain_sizes() == [32, 32, 32, 32]
        assert list(placement.leaf_index) == sorted(placement.leaf_index)
        assert placement.paths[0] == "socket0/l3-00"
        assert placement.paths[-1] == "socket1/l3-11"

    def test_partial_and_oversubscribed_counts_stay_proportional(self):
        tree = chiplet_machine()
        for count in (2, 8, 16, 100, 256):
            placement = place_cores(tree, count)
            assert placement.cores == count
            assert list(placement.leaf_index) == sorted(placement.leaf_index)
            sizes = placement.domain_sizes()
            assert sum(sizes) == count
            # Proportional split: no populated domain more than one core
            # apart from the perfectly even share of its slot weight.
            if count >= len(tree.leaves()):
                assert max(sizes) - min(sizes) <= 1

    def test_placement_requires_cores(self):
        with pytest.raises(SimulationError):
            place_cores(flat_topology(), 0)


# -- the generalized arbiter vs the pre-refactor reference --------------------


@st.composite
def arbiter_cases(draw):
    cores = draw(st.integers(min_value=1, max_value=6))
    core_cycles = draw(
        st.lists(
            st.integers(min_value=0, max_value=5000), min_size=cores, max_size=cores
        )
    )
    dram = draw(
        st.lists(
            st.integers(min_value=0, max_value=10_000), min_size=cores, max_size=cores
        )
    )
    l3 = draw(
        st.lists(
            st.integers(min_value=0, max_value=10_000), min_size=cores, max_size=cores
        )
    )
    supply = st.floats(
        min_value=0.01, max_value=64.0, allow_nan=False, allow_infinity=False
    )
    return core_cycles, dram, l3, draw(supply), draw(supply)


class TestArbiterEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(case=arbiter_cases())
    def test_two_resource_case_is_bit_identical_to_legacy(self, case):
        core_cycles, dram, l3, dram_rate, l3_rate = case
        expected_finish, expected_makespan, expected_contended = legacy_arbitrate(
            core_cycles,
            dram,
            l3,
            dram_lines_per_cycle=dram_rate,
            l3_lines_per_cycle=l3_rate,
        )
        outcome = arbitrate_bandwidth(
            core_cycles,
            dram,
            l3,
            dram_lines_per_cycle=dram_rate,
            l3_lines_per_cycle=l3_rate,
        )
        assert outcome.finish_cycles == expected_finish
        assert outcome.makespan == expected_makespan
        assert outcome.contended == expected_contended

    def test_mismatched_inputs_are_rejected(self):
        with pytest.raises(SimulationError):
            arbitrate_topology([10, 10], [[1, 2]], [1.0, 2.0], ["a", "b"])
        with pytest.raises(SimulationError):
            arbitrate_topology([10, 10], [[1]], [1.0], ["a"])

    def test_saturated_resources_are_reported_by_name(self):
        outcome = arbitrate_topology(
            [100, 100],
            demands=[[400, 400], [1, 1]],
            supplies=[1.0, 100.0],
            names=["link", "l3"],
        )
        assert outcome.contended
        assert outcome.saturated == ["link"]


@st.composite
def flat_traffic_cases(draw):
    cores = draw(st.integers(min_value=1, max_value=5))
    core_cycles = draw(
        st.lists(
            st.integers(min_value=1, max_value=5000), min_size=cores, max_size=cores
        )
    )
    traffic = draw(
        st.lists(
            st.integers(min_value=0, max_value=2000), min_size=cores, max_size=cores
        )
    )
    footprints = []
    for _ in range(cores):
        start = draw(st.integers(min_value=0, max_value=200))
        size = draw(st.integers(min_value=0, max_value=300))
        footprints.append(np.arange(start, start + size, dtype=np.int64))
    capacity = draw(st.integers(min_value=1, max_value=1 << 14))
    return core_cycles, traffic, footprints, capacity


class TestFlatTrafficEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(case=flat_traffic_cases())
    def test_one_level_resolution_matches_the_legacy_analytic(self, case):
        # The ISSUE's property: a recursive topology with one level and flat
        # parameters filters and arbitrates bit-identically to the
        # pre-refactor shared-L3 analytic + two-resource arbiter.
        core_cycles, private_dram, footprints, capacity = case
        machine = default_machine()
        shared = SharedMemoryParams(l3_capacity_bytes=capacity)
        topology = shared.to_topology(len(core_cycles))
        placement = place_cores(topology, len(core_cycles))
        traffic = resolve_traffic(
            topology, machine, placement, private_dram, footprints
        )
        expected_dram, expected_hits = legacy_flat_filter(
            private_dram, footprints, machine.l1.line_bytes, capacity
        )
        assert traffic.root_lines == expected_dram
        assert traffic.hit_lines == expected_hits
        # The L3 port sees the unfiltered lines; DRAM the filtered ones.
        assert traffic.names == ["l3", "dram"]
        assert traffic.demands[0] == list(private_dram)
        assert traffic.demands[1] == expected_dram

        outcome = arbitrate_topology(
            core_cycles, traffic.demands, traffic.supplies, traffic.names
        )
        expected_finish, expected_makespan, expected_contended = legacy_arbitrate(
            core_cycles,
            expected_dram,
            list(private_dram),
            dram_lines_per_cycle=shared.dram_lines_per_cycle(machine),
            l3_lines_per_cycle=shared.l3_lines_per_cycle(machine),
        )
        assert outcome.finish_cycles == expected_finish
        assert outcome.makespan == expected_makespan
        assert outcome.contended == expected_contended


# -- full-pipeline flat equivalence per kernel x strategy ---------------------


class TestFlatPipelineBitIdentity:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("kind,pattern", KERNEL_KINDS)
    def test_flat_default_matches_legacy_reference(self, kind, pattern, strategy):
        sharded = shard_kernel(kind, GemmShape(64, 64, 256), pattern, 4, strategy)
        machine = default_machine()
        shared = SharedMemoryParams()
        result = simulate_multicore(
            sharded.programs, machine=machine, engine=ENGINE
        )

        line_bytes = machine.l1.line_bytes
        simulator = CycleApproximateSimulator(machine=machine, engine=ENGINE)
        per_core = [
            simulator.run(program.trace, block_starts=program.block_starts)
            for program in sharded.programs
        ]
        footprints = [
            _footprint_line_array(program.trace, line_bytes)
            for program in sharded.programs
        ]
        private_dram = [
            r.memory_counters.get("dram_line_requests", 0) for r in per_core
        ]
        expected_dram, expected_hits = legacy_flat_filter(
            private_dram, footprints, line_bytes, shared.l3_capacity_bytes
        )
        expected_finish, expected_makespan, expected_contended = legacy_arbitrate(
            [r.core_cycles for r in per_core],
            expected_dram,
            private_dram,
            dram_lines_per_cycle=shared.dram_lines_per_cycle(machine),
            l3_lines_per_cycle=shared.l3_lines_per_cycle(machine),
        )
        assert result.core_cycles == expected_makespan
        assert result.finish_cycles == expected_finish
        assert result.contended == expected_contended
        assert result.dram_lines == expected_dram
        assert result.l3_hit_lines == expected_hits
        assert result.memory_counters["l3_hit_lines"] == sum(expected_hits)
        assert result.memory_counters["shared_dram_lines"] == sum(expected_dram)

    def test_contended_membound_case_matches_legacy(self):
        machine = memory_bound_machine()
        shared = SharedMemoryParams()
        sharded = shard_kernel(
            "gemm", GemmShape(64, 64, 512), SparsityPattern.DENSE_4_4, 8, "row-block"
        )
        result = simulate_multicore(
            sharded.programs, machine=machine, engine=ENGINE
        )
        assert result.contended

        line_bytes = machine.l1.line_bytes
        private_dram = [
            r.memory_counters.get("dram_line_requests", 0) for r in result.per_core
        ]
        footprints = [
            _footprint_line_array(program.trace, line_bytes)
            for program in sharded.programs
        ]
        expected_dram, _ = legacy_flat_filter(
            private_dram, footprints, line_bytes, shared.l3_capacity_bytes
        )
        expected_finish, expected_makespan, expected_contended = legacy_arbitrate(
            [r.core_cycles for r in result.per_core],
            expected_dram,
            private_dram,
            dram_lines_per_cycle=shared.dram_lines_per_cycle(machine),
            l3_lines_per_cycle=shared.l3_lines_per_cycle(machine),
        )
        assert result.core_cycles == expected_makespan
        assert result.finish_cycles == expected_finish
        assert result.contended == expected_contended
        assert result.saturated  # the flat DRAM channel was the bottleneck


# -- cores=1 invariance under every preset ------------------------------------


class TestSingleCoreInvariance:
    @pytest.mark.parametrize("preset", sorted(TOPOLOGY_PRESETS))
    @pytest.mark.parametrize("kind,pattern", KERNEL_KINDS)
    def test_one_core_matches_the_private_simulation(self, preset, kind, pattern):
        sharded = shard_kernel(kind, GemmShape(64, 64, 256), pattern, 1)
        single = CycleApproximateSimulator(engine=ENGINE).run(
            sharded.programs[0].trace, block_starts=sharded.programs[0].block_starts
        )
        multi = simulate_multicore(
            sharded.programs, engine=ENGINE, topology=get_topology(preset)
        )
        assert multi.core_cycles == single.core_cycles
        assert multi.finish_cycles == [single.core_cycles]
        assert not multi.contended
        assert multi.numa_domains == 1

    @pytest.mark.parametrize("preset", sorted(TOPOLOGY_PRESETS))
    def test_one_core_invariance_holds_on_the_membound_machine(self, preset):
        machine = memory_bound_machine()
        sharded = shard_kernel(
            "gemm", GemmShape(64, 64, 512), SparsityPattern.DENSE_4_4, 1
        )
        single = CycleApproximateSimulator(machine=machine, engine=ENGINE).run(
            sharded.programs[0].trace, block_starts=sharded.programs[0].block_starts
        )
        multi = simulate_multicore(
            sharded.programs,
            machine=machine,
            engine=ENGINE,
            topology=get_topology(preset),
        )
        assert multi.core_cycles == single.core_cycles
        assert not multi.contended


# -- topology semantics -------------------------------------------------------


class TestTopologySemantics:
    def test_dual_socket_relieves_the_membound_bottleneck(self):
        # Two memory channels vs one: the dual-socket tree must beat the
        # flat pool on a bandwidth-bound kernel sharded across both sockets.
        machine = memory_bound_machine()
        sharded = shard_kernel(
            "gemm", GemmShape(512, 64, 512), SparsityPattern.DENSE_4_4, 8, "row-block"
        )
        assert min(len(p.trace) for p in sharded.programs) > 0
        flat = simulate_multicore(sharded.programs, machine=machine, engine=ENGINE)
        numa = simulate_multicore(
            sharded.programs,
            machine=machine,
            engine=ENGINE,
            topology=dual_socket_machine(),
        )
        assert flat.contended
        assert numa.core_cycles < flat.core_cycles
        assert numa.numa_domains > 1
        assert 0.0 < numa.level_utilization["interconnect"] <= 1.0
        assert set(numa.node_utilization) >= {"dram", "socket0", "socket1"}

    def test_simulate_rejects_shared_plus_topology(self):
        sharded = shard_kernel(
            "gemm", GemmShape(64, 64, 256), SparsityPattern.DENSE_4_4, 2
        )
        with pytest.raises(SimulationError, match="not both"):
            simulate_multicore(
                sharded.programs,
                engine=ENGINE,
                shared=SharedMemoryParams(),
                topology=flat_topology(),
            )

    def test_memoized_cores_are_reused_across_topologies(self, monkeypatch):
        # The signature key is topology-independent on purpose: sweeping the
        # topology axis must not re-simulate a single core.
        sharded = shard_kernel(
            "gemm", GemmShape(256, 256, 256), SparsityPattern.DENSE_4_4, 8, "row-block"
        )
        runs = []
        original = CycleApproximateSimulator.run

        def counting_run(self, trace, **kwargs):
            runs.append(len(trace))
            return original(self, trace, **kwargs)

        monkeypatch.setattr(CycleApproximateSimulator, "run", counting_run)
        simulate_multicore(sharded.programs, engine=ENGINE)
        first = len(runs)
        assert first > 0
        simulate_multicore(
            sharded.programs, engine=ENGINE, topology=dual_socket_machine()
        )
        simulate_multicore(
            sharded.programs, engine=ENGINE, topology=chiplet_machine()
        )
        assert len(runs) == first


# -- the arbiter backstop -----------------------------------------------------


class TestArbiterBackstop:
    def test_exceeding_max_steps_names_the_congested_resource(self):
        # Two cores with different lengths need two completion steps; a
        # one-step budget must fail loudly and name the bottleneck.
        with pytest.raises(SimulationError) as excinfo:
            arbitrate_topology(
                [100, 200],
                demands=[[100, 200]],
                supplies=[0.5],
                names=["socket0"],
                max_steps=1,
            )
        message = str(excinfo.value)
        assert "exceeded 1 time steps" in message
        assert "'socket0'" in message
        assert "supply 0.5" in message

    def test_flat_wrapper_backstop_reports_the_resource(self):
        with pytest.raises(SimulationError, match="'dram'"):
            arbitrate_bandwidth(
                [100, 200],
                [100, 200],
                [0, 0],
                dram_lines_per_cycle=0.5,
                l3_lines_per_cycle=100.0,
                max_steps=1,
            )
