"""Tests for the set-associative cache and two-level hierarchy."""

import pytest

from repro.cpu.cache import Cache, CacheHierarchy
from repro.cpu.params import CacheParams
from repro.errors import ConfigurationError


def small_cache(capacity=1024, associativity=2, line=64):
    return Cache(CacheParams(name="test", capacity_bytes=capacity, associativity=associativity, line_bytes=line))


class TestCache:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(0x100)
        assert cache.access(0x100)
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_same_line_different_offsets_hit(self):
        cache = small_cache()
        cache.access(0x100)
        assert cache.access(0x13F)

    def test_lru_eviction(self):
        # 2-way, 8 sets, 64B lines: three lines mapping to the same set evict the LRU.
        cache = small_cache()
        sets = cache.params.num_sets
        line = cache.params.line_bytes
        a, b, c = 0, sets * line, 2 * sets * line
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a becomes MRU
        cache.access(c)  # evicts b
        assert cache.contains(a)
        assert not cache.contains(b)
        assert cache.stats.evictions == 1

    def test_fill_installs_without_lookup_stats(self):
        cache = small_cache()
        for address in (0x0, 0x40):
            cache.fill(address)
        assert cache.stats.misses == 0
        assert cache.access(0x0)

    def test_flush(self):
        cache = small_cache()
        cache.access(0x0)
        cache.flush()
        assert cache.resident_lines == 0

    def test_hit_rate(self):
        cache = small_cache()
        cache.access(0x0)
        cache.access(0x0)
        cache.access(0x0)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_zero_without_accesses(self):
        assert small_cache().stats.hit_rate == 0.0


class TestHierarchy:
    def _hierarchy(self):
        l1 = CacheParams(name="L1", capacity_bytes=4 * 1024, hit_latency=4)
        l2 = CacheParams(name="L2", capacity_bytes=64 * 1024, hit_latency=14)
        return CacheHierarchy(l1, l2, dram_latency=200)

    def test_cold_access_goes_to_dram(self):
        hierarchy = self._hierarchy()
        result = hierarchy.access_line(0x1000)
        assert result.level == "DRAM"
        assert result.latency == 200

    def test_second_access_hits_l1(self):
        hierarchy = self._hierarchy()
        hierarchy.access_line(0x1000)
        result = hierarchy.access_line(0x1000)
        assert result.level == "L1"
        assert result.latency == 4

    def test_warm_l2_gives_l2_hits(self):
        hierarchy = self._hierarchy()
        hierarchy.warm_l2([0x2000])
        result = hierarchy.access_line(0x2000)
        assert result.level == "L2"
        assert result.latency == 14

    def test_l1_capacity_overflow_falls_back_to_l2(self):
        hierarchy = self._hierarchy()
        lines = 4 * 1024 // 64
        for index in range(lines * 2):
            hierarchy.access_line(index * 64)
        # Re-access the first line: it must have been evicted from L1 but kept in L2.
        result = hierarchy.access_line(0)
        assert result.level == "L2"

    def test_warm_l2_survives_capacity_pressure(self):
        # The ideal-prefetch flag is not subject to LRU eviction: a
        # registered line stays deliverable at L2 latency even after the
        # whole L2 has been streamed over.
        hierarchy = self._hierarchy()
        hierarchy.warm_l2([0x2000])
        lines = 64 * 1024 // 64
        for index in range(lines * 2):
            hierarchy.access_line(0x100000 + index * 64)
        assert hierarchy.access_line(0x2000).level == "L2"

    def test_warm_l2_covers_smaller_l1_lines(self):
        # Regression: with l2.line_bytes > l1.line_bytes the prefetch set
        # used exact address membership, so odd L1 lines of a prefetched
        # region still paid the DRAM latency.
        l1 = CacheParams(name="L1", capacity_bytes=4 * 1024, line_bytes=64, hit_latency=4)
        l2 = CacheParams(name="L2", capacity_bytes=64 * 1024, line_bytes=128, hit_latency=14)
        hierarchy = CacheHierarchy(l1, l2, dram_latency=200)
        hierarchy.warm_l2([0])  # one 128-byte L2 line
        assert hierarchy.access_line(64).level == "L2"
        assert hierarchy.dram_line_requests == 0

    def test_l2_must_be_larger_than_l1(self):
        l1 = CacheParams(name="L1", capacity_bytes=64 * 1024)
        l2 = CacheParams(name="L2", capacity_bytes=4 * 1024)
        with pytest.raises(ConfigurationError):
            CacheHierarchy(l1, l2, dram_latency=100)

    def test_counters(self):
        hierarchy = self._hierarchy()
        hierarchy.access_line(0)
        hierarchy.access_line(0)
        counters = hierarchy.counters()
        assert counters["dram_line_requests"] == 1
        assert counters["l1_hits"] == 1
