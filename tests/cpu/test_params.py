"""Tests for machine parameter validation."""

import pytest

from repro.cpu.params import CacheParams, CoreParams, MachineParams, MemoryParams, default_machine
from repro.errors import ConfigurationError


class TestCoreParams:
    def test_defaults_match_evaluation_setup(self):
        core = default_machine().core
        assert core.frequency_ghz == 2.0
        assert core.matrix_engine_frequency_ghz == 0.5
        assert core.issue_width == 4
        assert core.rob_entries == 97
        assert core.load_buffer_entries == 96
        assert core.pipeline_stages == 16

    def test_engine_clock_ratio(self):
        assert default_machine().core.engine_clock_ratio == 4

    def test_engine_cannot_outpace_core(self):
        with pytest.raises(ConfigurationError):
            CoreParams(frequency_ghz=1.0, matrix_engine_frequency_ghz=2.0)

    def test_positive_widths_required(self):
        with pytest.raises(ConfigurationError):
            CoreParams(issue_width=0)

    def test_positive_buffers_required(self):
        with pytest.raises(ConfigurationError):
            CoreParams(rob_entries=0)


class TestCacheParams:
    def test_num_sets(self):
        cache = CacheParams(name="L1", capacity_bytes=32 * 1024, associativity=8)
        assert cache.num_sets == 64
        assert cache.num_lines == 512

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            CacheParams(name="bad", capacity_bytes=1000, associativity=3)

    def test_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            CacheParams(name="bad", capacity_bytes=0)


class TestMemoryParams:
    def test_bandwidth_per_cycle(self):
        memory = MemoryParams(dram_bandwidth_gbps=94.0, core_frequency_ghz=2.0)
        assert memory.dram_bytes_per_core_cycle == pytest.approx(47.0)


class TestMachineParams:
    def test_default_machine_prefetches_into_l2(self):
        assert default_machine().prefetch_into_l2

    def test_l2_larger_than_l1(self):
        machine = default_machine()
        assert machine.l2.capacity_bytes > machine.l1.capacity_bytes
