"""Tests for the memory system (bandwidth + hierarchy)."""

import pytest

from repro.cpu.memory import MemorySystem
from repro.cpu.params import default_machine
from repro.errors import SimulationError


class TestMemorySystem:
    def test_tile_load_touches_16_lines(self):
        memory = MemorySystem(default_machine())
        result = memory.request(0x10000, 1024, cycle=0)
        assert result.lines == 16

    def test_prefetched_region_hits_l2(self):
        memory = MemorySystem(default_machine())
        memory.prefetch_regions([(0x10000, 1024)])
        result = memory.request(0x10000, 1024, cycle=0)
        assert result.dram_lines == 0
        assert result.l2_hits == 16

    def test_cold_region_goes_to_dram(self):
        memory = MemorySystem(default_machine())
        result = memory.request(0x20000, 64, cycle=0)
        assert result.dram_lines == 1
        assert result.latency >= default_machine().memory.dram_latency_cycles

    def test_l2_port_serialises_lines(self):
        memory = MemorySystem(default_machine())
        memory.prefetch_regions([(0x0, 4096)])
        result = memory.request(0x0, 4096, cycle=0)
        # 64 lines at one per cycle plus the L2 hit latency for the last line.
        assert result.latency >= 64

    def test_repeated_access_hits_l1_and_gets_faster(self):
        memory = MemorySystem(default_machine())
        memory.prefetch_regions([(0x0, 1024)])
        first = memory.request(0x0, 1024, cycle=0)
        second = memory.request(0x0, 1024, cycle=first.complete_cycle)
        assert second.latency <= first.latency
        assert second.l1_hits == 16

    def test_counters_accumulate(self):
        memory = MemorySystem(default_machine())
        memory.request(0x0, 128, cycle=0)
        memory.request(0x1000, 128, cycle=10)
        counters = memory.counters()
        assert counters["total_requests"] == 2
        assert counters["total_bytes"] == 256

    def test_invalid_request_rejected(self):
        memory = MemorySystem(default_machine())
        with pytest.raises(SimulationError):
            memory.request(0x0, 0, cycle=0)
