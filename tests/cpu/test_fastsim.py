"""Cross-validation of the simulator's steady-state fast path.

The acceptance contract for the fast path is that it matches ``mode="exact"``
cycle counts within 1 % on kernel traces while skipping the bulk of the
steady-state work; on traces too small or too irregular to skip it must fall
back to behaviour that is bit-identical to the exact path.
"""

import dataclasses

import pytest

from repro.core import isa
from repro.core.engine import get_engine
from repro.core.registers import treg
from repro.cpu.fastsim import (
    build_segments,
    derive_block_starts,
    op_signature,
    run_fast,
)
from repro.cpu.params import MachineParams, default_machine
from repro.cpu.simulator import CycleApproximateSimulator
from repro.cpu.trace import scalar_op, tile_op, vector_fma, vector_load
from repro.errors import SimulationError
from repro.kernels.gemm import build_dense_gemm_kernel
from repro.kernels.spmm import build_spmm_kernel
from repro.kernels.vector import build_vector_gemm_kernel
from repro.types import GemmShape, SparsityPattern


def _compare(program, engine, machine=None, hint=True, tolerance=0.01):
    simulator = CycleApproximateSimulator(machine=machine, engine=engine)
    exact = simulator.run(program.trace, mode="exact")
    fast = simulator.run(
        program.trace, block_starts=program.block_starts if hint else None
    )
    assert fast.core_cycles == pytest.approx(exact.core_cycles, rel=tolerance)
    assert fast.trace_summary == exact.trace_summary
    assert fast.tile_compute_ops == exact.tile_compute_ops
    assert fast.engine_busy_cycles == exact.engine_busy_cycles
    return exact, fast


class TestFastMatchesExactOnKernels:
    """Tier-1 kernel traces: fast path within 1 % of the exact scoreboard."""

    def test_dense_optimized_kernel(self):
        program = build_dense_gemm_kernel(GemmShape(256, 256, 1024))
        exact, fast = _compare(program, get_engine("VEGETA-D-1-2"))
        assert fast.memory_counters == exact.memory_counters

    def test_dense_on_every_dense_engine(self):
        program = build_dense_gemm_kernel(GemmShape(128, 128, 1024))
        for name in ("VEGETA-D-1-1", "VEGETA-D-1-2", "VEGETA-D-16-1"):
            _compare(program, get_engine(name))

    def test_dense_listing1_variant(self):
        program = build_dense_gemm_kernel(GemmShape(128, 128, 512), variant="listing1")
        _compare(program, get_engine("VEGETA-D-1-2"))

    def test_dense_odd_tile_grid(self):
        # 13x13 C tiles: the last block row/column use smaller blocks, so the
        # trace holds several distinct periodic segments.
        program = build_dense_gemm_kernel(GemmShape(208, 208, 512))
        _compare(program, get_engine("VEGETA-D-1-2"))

    def test_spmm_2_4_kernel(self):
        program = build_spmm_kernel(GemmShape(256, 256, 1024), SparsityPattern.SPARSE_2_4)
        _compare(program, get_engine("VEGETA-S-16-2"))

    def test_spmm_kernels_with_output_forwarding(self):
        engine = get_engine("VEGETA-S-16-2").with_output_forwarding()
        for pattern in (SparsityPattern.SPARSE_2_4, SparsityPattern.SPARSE_1_4):
            program = build_spmm_kernel(GemmShape(256, 256, 1024), pattern)
            _compare(program, engine)

    def test_detection_without_builder_hints(self):
        program = build_spmm_kernel(GemmShape(256, 256, 1024), SparsityPattern.SPARSE_2_4)
        _compare(program, get_engine("VEGETA-S-16-2"), hint=False)

    def test_vector_kernel_without_hints(self):
        program = build_vector_gemm_kernel(GemmShape(64, 64, 256))
        _compare(program, None, hint=False)

    def test_no_prefetch_machine(self):
        machine = dataclasses.replace(default_machine(), prefetch_into_l2=False)
        program = build_dense_gemm_kernel(GemmShape(256, 256, 512))
        _compare(program, get_engine("VEGETA-D-1-2"), machine=machine)

    def test_unit_engine_clock_ratio(self):
        core = dataclasses.replace(
            default_machine().core, matrix_engine_frequency_ghz=2.0
        )
        program = build_dense_gemm_kernel(GemmShape(256, 256, 512))
        _compare(program, get_engine("VEGETA-D-1-2"), machine=MachineParams(core=core))

    def test_structural_pressure_machine(self):
        core = dataclasses.replace(default_machine().core, rob_entries=8)
        program = build_dense_gemm_kernel(GemmShape(256, 256, 512))
        _compare(program, get_engine("VEGETA-D-1-2"), machine=MachineParams(core=core))

    def test_fast_path_actually_skips(self, monkeypatch):
        # On a long uniform kernel the fast path must not fall back to
        # stepping every op: the proven steady state lets it jump.
        from repro.cpu.simulator import SimulatorState

        program = build_dense_gemm_kernel(GemmShape(256, 256, 1024))
        stepped = 0

        class CountingState(SimulatorState):
            def step(self, op):
                nonlocal stepped
                stepped += 1
                return super().step(op)

        monkeypatch.setattr("repro.cpu.fastsim.SimulatorState", CountingState)
        result = run_fast(
            default_machine(), get_engine("VEGETA-D-1-2"), program.trace, program.block_starts
        )
        assert result is not None
        assert stepped < len(program.trace) / 2


class TestSmallTraceEquivalence:
    """Traces with nothing to skip must be bit-identical to exact mode."""

    def test_tiny_gemm_trace(self):
        trace = [
            tile_op(isa.tile_load_t(treg(4), 0x1000)),
            tile_op(isa.tile_load_t(treg(5), 0x2000)),
        ] + [tile_op(isa.tile_gemm(treg(i % 4), treg(4), treg(5))) for i in range(6)]
        simulator = CycleApproximateSimulator(engine=get_engine("VEGETA-D-1-2"))
        exact = simulator.run(trace, mode="exact")
        fast = simulator.run(trace, mode="fast")
        assert fast.core_cycles == exact.core_cycles
        assert fast.memory_counters == exact.memory_counters

    def test_small_kernel_identical(self):
        program = build_dense_gemm_kernel(GemmShape(32, 32, 64))
        simulator = CycleApproximateSimulator(engine=get_engine("VEGETA-D-1-2"))
        exact = simulator.run(program.trace, mode="exact")
        fast = simulator.run(program.trace, block_starts=program.block_starts)
        assert fast.core_cycles == exact.core_cycles

    def test_repeated_vector_fmas(self):
        trace = [vector_fma(0, (1,)) for _ in range(100)]
        simulator = CycleApproximateSimulator()
        assert (
            simulator.run(trace, mode="fast").core_cycles
            == simulator.run(trace, mode="exact").core_cycles
        )


class TestEdgeContracts:
    """Pinned contracts for degenerate traces (both modes)."""

    @pytest.mark.parametrize("mode", ["fast", "exact"])
    def test_empty_trace_takes_zero_time(self, mode):
        result = CycleApproximateSimulator(engine=get_engine("VEGETA-D-1-2")).run(
            [], mode=mode
        )
        assert result.core_cycles == 0
        assert result.runtime_seconds == 0.0
        assert result.instructions == 0
        assert result.ipc == 0.0
        assert result.tile_compute_ops == 0

    @pytest.mark.parametrize("mode", ["fast", "exact"])
    def test_single_op_trace(self, mode):
        result = CycleApproximateSimulator().run([scalar_op()], mode=mode)
        assert result.core_cycles == 1
        assert result.instructions == 1

    @pytest.mark.parametrize("mode", ["fast", "exact"])
    def test_single_load_trace(self, mode):
        result = CycleApproximateSimulator().run([vector_load(0, 0x1000)], mode=mode)
        assert result.core_cycles > 1
        assert result.memory_counters["total_requests"] == 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError):
            CycleApproximateSimulator(mode="warp")
        with pytest.raises(SimulationError):
            CycleApproximateSimulator().run([scalar_op()], mode="warp")

    def test_compute_without_engine_rejected_in_fast_mode(self):
        trace = [tile_op(isa.tile_gemm(treg(0), treg(1), treg(2)))]
        with pytest.raises(SimulationError):
            CycleApproximateSimulator(engine=None).run(trace, mode="fast")


class TestPeriodicityHelpers:
    def test_signature_ignores_addresses(self):
        a = tile_op(isa.tile_load_t(treg(1), 0x1000, "load A"))
        b = tile_op(isa.tile_load_t(treg(1), 0x9000, "load A"))
        c = tile_op(isa.tile_load_t(treg(2), 0x1000, "load A"))
        assert op_signature(a) == op_signature(b)
        assert op_signature(a) != op_signature(c)

    def test_derive_block_starts_finds_builder_blocks(self):
        program = build_dense_gemm_kernel(GemmShape(128, 128, 256))
        starts, signatures = derive_block_starts(program.trace)
        assert starts is not None
        # The detected anchors recur with the builder's block period.
        expected_period = program.block_starts[1] - program.block_starts[0]
        assert starts[1] - starts[0] == expected_period
        assert len(starts) == len(program.block_starts)

    def test_derive_block_starts_rejects_irregular_traces(self):
        trace = [scalar_op(f"unique-{i}") for i in range(32)]
        starts, signatures = derive_block_starts(trace)
        assert starts is None and signatures is None

    def test_build_segments_splits_on_length_change(self):
        bounds, segments = build_segments([0, 10, 20, 30, 45, 60], 75)
        assert bounds[-1] == 75
        assert segments == [(0, 3), (3, 3)]

    def test_run_fast_returns_none_without_periodicity(self):
        trace = [scalar_op(f"u{i}") for i in range(16)]
        assert run_fast(default_machine(), None, trace) is None

    def test_signature_ids_are_deterministic(self):
        # Regression: hash()-based signatures made anchor selection depend on
        # PYTHONHASHSEED.  Ids must be assigned in first-appearance order.
        from repro.cpu.fastsim import lower_signatures

        program = build_dense_gemm_kernel(GemmShape(64, 64, 128))
        ids = lower_signatures(program.trace)
        assert ids[0] == 0
        seen = set()
        expected_next = 0
        for value in ids:
            if value not in seen:
                assert value == expected_next  # first appearance gets the next id
                seen.add(value)
                expected_next += 1

    def test_detection_is_stable_across_hash_seeds(self):
        import os
        import subprocess
        import sys

        script = (
            "from repro.cpu.fastsim import derive_block_starts\n"
            "from repro.kernels.gemm import build_dense_gemm_kernel\n"
            "from repro.types import GemmShape\n"
            "starts, _ = derive_block_starts(build_dense_gemm_kernel(GemmShape(64, 64, 256)).trace)\n"
            "print(list(starts))\n"
        )
        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        outputs = set()
        for seed in ("0", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={**os.environ, "PYTHONHASHSEED": seed, "PYTHONPATH": src_dir},
                check=True,
            )
            outputs.add(result.stdout)
        assert len(outputs) == 1


class TestHintValidation:
    """Builder hints are validated; bad hints degrade gracefully."""

    def _blocks_of_different_composition(self):
        # Two interleaved equal-length block flavours: same length (3 ops),
        # different scalar/branch mix — a lying hint must not corrupt the
        # instruction-mix summary.
        from repro.cpu.trace import branch_op

        trace = []
        starts = []
        for index in range(12):
            starts.append(len(trace))
            if index % 2 == 0:
                trace.extend([scalar_op("a"), scalar_op("a"), branch_op("a")])
            else:
                trace.extend([scalar_op("a"), branch_op("a"), branch_op("a")])
        return trace, tuple(starts)

    def test_lying_hint_falls_back_to_exact(self):
        trace, starts = self._blocks_of_different_composition()
        simulator = CycleApproximateSimulator()
        exact = simulator.run(trace, mode="exact")
        fast = simulator.run(trace, block_starts=starts)
        assert fast.core_cycles == exact.core_cycles
        assert fast.trace_summary == exact.trace_summary

    def test_lying_hint_inside_skipped_span_is_caught(self):
        # Mismatching blocks that sit entirely between the simulated anchors
        # must still be detected (via the skipped-span spot-check), not
        # silently accounted as copies of the segment head.
        from repro.cpu.trace import vector_fma

        trace = []
        starts = []
        for index in range(30):
            starts.append(len(trace))
            if 8 <= index < 28:
                trace.extend([vector_fma(0, (1,)), vector_fma(0, (1,)), vector_fma(0, (1,))])
            else:
                trace.extend([scalar_op("x"), scalar_op("x"), scalar_op("x")])
        simulator = CycleApproximateSimulator()
        exact = simulator.run(trace, mode="exact")
        fast = simulator.run(trace, block_starts=tuple(starts))
        assert fast.core_cycles == exact.core_cycles
        assert fast.trace_summary == exact.trace_summary

    def test_malformed_hints_are_ignored(self):
        program = build_dense_gemm_kernel(GemmShape(64, 64, 256))
        simulator = CycleApproximateSimulator(engine=get_engine("VEGETA-D-1-2"))
        exact = simulator.run(program.trace, mode="exact")
        for bad in ((5, 3, 1), (0, 10, 10**9), (-3, 0, 5)):
            fast = simulator.run(program.trace, block_starts=bad)
            assert fast.core_cycles == exact.core_cycles
            assert fast.trace_summary == exact.trace_summary
