"""Tests for trace records and summaries."""

import pytest

from repro.core import isa
from repro.core.registers import treg
from repro.cpu.trace import (
    TraceOp,
    TraceOpKind,
    branch_op,
    scalar_op,
    summarize_trace,
    tile_op,
    trace_memory_footprint,
    vector_fma,
    vector_load,
    vector_store,
)
from repro.errors import SimulationError


class TestTraceOpConstruction:
    def test_tile_op(self):
        op = tile_op(isa.tile_gemm(treg(0), treg(1), treg(2)))
        assert op.kind is TraceOpKind.TILE
        assert not op.is_memory

    def test_tile_load_is_memory(self):
        op = tile_op(isa.tile_load_t(treg(0), 0x1000))
        assert op.is_memory and op.memory_bytes == 1024

    def test_vector_load(self):
        op = vector_load(3, 0x2000)
        assert op.is_memory and op.memory_bytes == 64 and op.dst_reg == 3

    def test_vector_store(self):
        op = vector_store(5, 0x3000)
        assert op.src_regs == (5,)

    def test_vector_fma(self):
        op = vector_fma(1, (2, 3))
        assert not op.is_memory and op.memory_bytes == 0

    def test_scalar_and_branch(self):
        assert scalar_op().kind is TraceOpKind.SCALAR
        assert branch_op().kind is TraceOpKind.BRANCH

    def test_tile_kind_requires_instruction(self):
        with pytest.raises(SimulationError):
            TraceOp(kind=TraceOpKind.TILE)

    def test_non_tile_kind_rejects_instruction(self):
        with pytest.raises(SimulationError):
            TraceOp(kind=TraceOpKind.SCALAR, tile=isa.tile_gemm(treg(0), treg(1), treg(2)))

    def test_vector_load_needs_address(self):
        with pytest.raises(SimulationError):
            TraceOp(kind=TraceOpKind.VECTOR_LOAD, dst_reg=0)


class TestSummarize:
    def test_mix_counts(self):
        trace = [
            tile_op(isa.tile_load_t(treg(0), 0)),
            tile_op(isa.tile_load_t(treg(1), 1024)),
            tile_op(isa.tile_gemm(treg(2), treg(0), treg(1))),
            tile_op(isa.tile_store_t(0x8000, treg(2))),
            vector_load(0, 0x100),
            vector_fma(1, (0,)),
            scalar_op(),
            branch_op(),
        ]
        summary = summarize_trace(trace)
        assert summary.total == 8
        assert summary.tile_load == 2 and summary.tile_compute == 1 and summary.tile_store == 1
        assert summary.vector_load == 1 and summary.vector_fma == 1
        assert summary.scalar == 1 and summary.branch == 1
        assert summary.tile_total == 4 and summary.vector_total == 2
        assert summary.by_opcode["TILE_GEMM"] == 1
        assert summary.memory_bytes == 1024 * 3 + 64

    def test_footprint_deduplicates(self):
        trace = [
            tile_op(isa.tile_load_t(treg(0), 0x1000)),
            tile_op(isa.tile_load_t(treg(1), 0x1000)),
            vector_load(0, 0x9000, 64),
        ]
        regions = trace_memory_footprint(trace)
        assert regions == [(0x1000, 1024), (0x9000, 64)]
