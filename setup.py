"""Setup shim so `python setup.py develop` works in offline environments.

All project metadata lives in pyproject.toml; this file only exists because
the environment has no `wheel` package, which modern editable installs via
pip require.
"""

from setuptools import setup

setup()
