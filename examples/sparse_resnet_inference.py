#!/usr/bin/env python
"""Sparse convolutional inference: a ResNet-style layer through VEGETA.

Reproduces the workload the paper's introduction motivates: a convolutional
layer is lowered to GEMM with im2col, its weights are magnitude-pruned to a
structured N:4 pattern, and the resulting SPMM runs on the VEGETA engine.
The script verifies the sparse result against a direct convolution of the
pruned weights and compares simulated runtimes across 4:4 / 2:4 / 1:4.

Run with:  python examples/sparse_resnet_inference.py
"""

import numpy as np

from repro import CycleApproximateSimulator, SparsityPattern, get_engine
from repro.kernels import (
    ConvShape,
    build_dense_gemm_kernel,
    build_spmm_kernel,
    im2col,
    run_functional,
    weights_to_matrix,
)
from repro.sparse import prune_to_pattern
from repro.workloads import get_layer


def main() -> None:
    # A scaled-down ResNet50-L2-style layer (3x3 convolution, same padding)
    # so the functional check stays fast; the timing sweep then uses the real
    # Table IV layer dimensions.
    conv = ConvShape(out_channels=32, in_channels=16, in_height=14, in_width=14,
                     filter_height=3, filter_width=3, padding=1)
    rng = np.random.default_rng(0)
    activations = rng.standard_normal((16, 14, 14)).astype(np.float32)
    weights = rng.standard_normal((32, 16, 3, 3)).astype(np.float32)

    gemm = conv.gemm_shape()
    print(f"conv {conv.out_channels}x{conv.in_channels}x{conv.filter_height}x{conv.filter_width} "
          f"-> GEMM {gemm.m}x{gemm.n}x{gemm.k}")

    # Functional check: pruned weights through the 2:4 SPMM kernel.
    weight_matrix = prune_to_pattern(weights_to_matrix(weights, conv), SparsityPattern.SPARSE_2_4)
    columns = im2col(activations, conv)
    kernel = build_spmm_kernel(gemm, SparsityPattern.SPARSE_2_4, a=weight_matrix, b=columns)
    output = run_functional(kernel).reshape(conv.out_channels, conv.out_height, conv.out_width)
    expected = (weight_matrix @ columns).reshape(output.shape)
    print(f"sparse convolution matches reference: {np.allclose(output, expected, rtol=1e-2, atol=0.2)}")

    # Timing sweep on the real ResNet50-L2 dimensions from Table IV.
    layer = get_layer("ResNet50-L2")
    engine = get_engine("VEGETA-S-16-2").with_output_forwarding()
    simulator = CycleApproximateSimulator(engine=engine)
    print(f"\n{layer.name}: GEMM {layer.gemm.m}x{layer.gemm.n}x{layer.gemm.k} "
          f"({layer.macs:,} MACs), engine {engine.name}")
    baseline_cycles = None
    for pattern in (SparsityPattern.DENSE_4_4, SparsityPattern.SPARSE_2_4, SparsityPattern.SPARSE_1_4):
        if pattern is SparsityPattern.DENSE_4_4:
            program = build_dense_gemm_kernel(layer.gemm, max_output_tiles=4)
        else:
            program = build_spmm_kernel(layer.gemm, pattern, max_output_tiles=4)
        result = simulator.run(program.trace)
        scaled = result.core_cycles / program.simulated_fraction
        if baseline_cycles is None:
            baseline_cycles = scaled
        print(f"  weights {pattern.value:>3}: {scaled:>12,.0f} core cycles "
              f"({baseline_cycles / scaled:.2f}x vs dense)")


if __name__ == "__main__":
    main()
