#!/usr/bin/env python
"""Sparse convolutional inference: a ResNet-style layer through VEGETA.

Reproduces the workload the paper's introduction motivates: a convolutional
layer is lowered to GEMM with im2col, its weights are magnitude-pruned to a
structured N:4 pattern, and the resulting SPMM runs on the VEGETA engine.
The script verifies the sparse result against a direct convolution of the
pruned weights and compares simulated runtimes across 4:4 / 2:4 / 1:4.

Run with:  python examples/sparse_resnet_inference.py
"""

import numpy as np

from repro import SparsityPattern
from repro.experiments import run_experiment
from repro.experiments.figures import figure13_spec
from repro.kernels import (
    ConvShape,
    build_spmm_kernel,
    im2col,
    run_functional,
    weights_to_matrix,
)
from repro.sparse import prune_to_pattern
from repro.workloads import get_layer


def main() -> None:
    # A scaled-down ResNet50-L2-style layer (3x3 convolution, same padding)
    # so the functional check stays fast; the timing sweep then uses the real
    # Table IV layer dimensions.
    conv = ConvShape(out_channels=32, in_channels=16, in_height=14, in_width=14,
                     filter_height=3, filter_width=3, padding=1)
    rng = np.random.default_rng(0)
    activations = rng.standard_normal((16, 14, 14)).astype(np.float32)
    weights = rng.standard_normal((32, 16, 3, 3)).astype(np.float32)

    gemm = conv.gemm_shape()
    print(f"conv {conv.out_channels}x{conv.in_channels}x{conv.filter_height}x{conv.filter_width} "
          f"-> GEMM {gemm.m}x{gemm.n}x{gemm.k}")

    # Functional check: pruned weights through the 2:4 SPMM kernel.
    weight_matrix = prune_to_pattern(weights_to_matrix(weights, conv), SparsityPattern.SPARSE_2_4)
    columns = im2col(activations, conv)
    kernel = build_spmm_kernel(gemm, SparsityPattern.SPARSE_2_4, a=weight_matrix, b=columns)
    output = run_functional(kernel).reshape(conv.out_channels, conv.out_height, conv.out_width)
    expected = (weight_matrix @ columns).reshape(output.shape)
    print(f"sparse convolution matches reference: {np.allclose(output, expected, rtol=1e-2, atol=0.2)}")

    # Timing sweep on the real ResNet50-L2 dimensions from Table IV, run
    # through the repro.experiments subsystem: the three points are cached on
    # disk, so re-running this script skips the simulations entirely.
    layer = get_layer("ResNet50-L2")
    engine_name = "VEGETA-S-16-2+OF"
    table = run_experiment(
        figure13_spec(
            layers=[layer.name],
            engine_names=[engine_name],
            patterns=(SparsityPattern.DENSE_4_4, SparsityPattern.SPARSE_2_4,
                      SparsityPattern.SPARSE_1_4),
            max_output_tiles=4,
        )
    )
    print(f"\n{layer.name}: GEMM {layer.gemm.m}x{layer.gemm.n}x{layer.gemm.k} "
          f"({layer.macs:,} MACs), engine {engine_name} "
          f"({table.meta['cached']} cached, {table.meta['executed']} simulated)")
    baseline_cycles = table.rows[0]["core_cycles_scaled"]
    for point in table:
        print(f"  weights {point['pattern']:>3}: {point['core_cycles_scaled']:>12,.0f} core cycles "
              f"({baseline_cycles / point['core_cycles_scaled']:.2f}x vs dense)")


if __name__ == "__main__":
    main()
