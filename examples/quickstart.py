#!/usr/bin/env python
"""Quickstart: run a 2:4 sparse GEMM on a VEGETA engine, end to end.

This walks the full flow of the library in ~60 lines:

1. generate a GEMM problem and magnitude-prune the weights to 2:4 sparsity,
2. build a ``TILE_SPMM_U`` kernel (instruction trace + memory image),
3. execute it on the functional model and check the numerics against numpy,
4. simulate the same trace on the cycle-approximate CPU model with both the
   state-of-the-art dense engine (RASA-DM) and VEGETA-S-16-2 with output
   forwarding, and report the speed-up.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CycleApproximateSimulator,
    GemmShape,
    SparsityPattern,
    build_dense_gemm_kernel,
    build_spmm_kernel,
    get_engine,
    run_functional,
)
from repro.kernels.validate import reference_gemm
from repro.workloads import generate_structured


def main() -> None:
    shape = GemmShape(m=128, n=128, k=512)
    print(f"GEMM problem: C({shape.m}x{shape.n}) += A({shape.m}x{shape.k}) x B({shape.k}x{shape.n})")

    # 1. Synthetic operands with A pruned to 2:4 structured sparsity.
    data = generate_structured(shape, SparsityPattern.SPARSE_2_4, seed=0)
    print(f"weight sparsity degree: {data.sparsity_degree:.0%}")

    # 2. Build the sparse kernel (with data, so it can be executed functionally).
    sparse_kernel = build_spmm_kernel(shape, SparsityPattern.SPARSE_2_4, a=data.a, b=data.b)
    summary = sparse_kernel.summary()
    print(f"kernel: {summary.tile_compute} TILE_SPMM_U, {summary.tile_load} tile loads, "
          f"{summary.tile_store} tile stores, {summary.total} instructions total")

    # 3. Functional execution and numerical check.
    result = run_functional(sparse_kernel)
    reference = reference_gemm(data.a, data.b)
    max_error = float(np.max(np.abs(result - reference)))
    print(f"functional result matches numpy reference: {np.allclose(result, reference, atol=1e-3)} "
          f"(max abs error {max_error:.2e})")

    # 4. Timing: SOTA dense engine running the dense kernel vs VEGETA-S + OF
    #    running the sparse kernel.
    dense_kernel = build_dense_gemm_kernel(shape)
    rasa_dm = get_engine("VEGETA-D-1-2")
    vegeta = get_engine("VEGETA-S-16-2").with_output_forwarding()

    dense_cycles = CycleApproximateSimulator(engine=rasa_dm).run(dense_kernel.trace).core_cycles
    sparse_cycles = CycleApproximateSimulator(engine=vegeta).run(sparse_kernel.trace).core_cycles
    print(f"RASA-DM (dense kernel):        {dense_cycles:>9,} core cycles")
    print(f"VEGETA-S-16-2+OF (2:4 kernel): {sparse_cycles:>9,} core cycles")
    print(f"speed-up: {dense_cycles / sparse_cycles:.2f}x")


if __name__ == "__main__":
    main()
