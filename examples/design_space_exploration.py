#!/usr/bin/env python
"""Design-space exploration across the Table III VEGETA engine variants.

For one Transformer layer (BERT-L2) with 2:4 sparse weights, this example
sweeps every engine configuration of Table III (plus the STC-like baseline
and output forwarding), simulates the layer, and prints runtime together with
the analytical area / power / frequency estimates — the performance-area
trade-off the paper's Section VI-C/VI-D discusses.

Run with:  python examples/design_space_exploration.py
"""

from repro import CycleApproximateSimulator, SparsityPattern
from repro.analysis.area_power import estimate
from repro.analysis.runtime import FIGURE13_ENGINE_NAMES, resolve_engine
from repro.kernels import build_dense_gemm_kernel, build_spmm_kernel
from repro.workloads import get_layer


def main() -> None:
    layer = get_layer("BERT-L2")
    pattern = SparsityPattern.SPARSE_2_4
    print(f"{layer.name}: GEMM {layer.gemm.m}x{layer.gemm.n}x{layer.gemm.k}, weights {pattern.value} sparse\n")
    print(f"{'engine':<18}{'cycles':>14}{'speed-up':>10}{'norm.area':>11}{'norm.power':>12}{'fmax(GHz)':>11}")

    baseline_cycles = None
    for name in FIGURE13_ENGINE_NAMES:
        engine = resolve_engine(name)
        executed = engine.executable_pattern(pattern)
        if executed is SparsityPattern.DENSE_4_4:
            program = build_dense_gemm_kernel(layer.gemm, max_output_tiles=4)
        else:
            program = build_spmm_kernel(layer.gemm, executed, max_output_tiles=4)
        result = CycleApproximateSimulator(engine=engine).run(program.trace)
        cycles = result.core_cycles / program.simulated_fraction
        if baseline_cycles is None:
            baseline_cycles = cycles
        cost = estimate(engine.with_output_forwarding(False)) if engine.output_forwarding else estimate(engine)
        print(
            f"{name:<18}{cycles:>14,.0f}{baseline_cycles / cycles:>9.2f}x"
            f"{cost.area_normalized:>11.3f}{cost.power_normalized:>12.3f}{cost.frequency_ghz:>11.2f}"
        )

    print("\n(cycles are steady-state samples scaled to the full layer; area/power are")
    print(" normalised to RASA-SM; every design meets the 0.5 GHz evaluation clock)")


if __name__ == "__main__":
    main()
