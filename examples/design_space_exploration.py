#!/usr/bin/env python
"""Design-space exploration across the Table III VEGETA engine variants.

For one Transformer layer (BERT-L2) with 2:4 sparse weights, this example
sweeps every engine configuration of Table III (plus the STC-like baseline
and output forwarding), simulates the layer, and prints runtime together with
the analytical area / power / frequency estimates — the performance-area
trade-off the paper's Section VI-C/VI-D discusses.

Both sweeps run through the :mod:`repro.experiments` subsystem: the runtime
points and cost estimates are served from the content-addressed result cache
on repeated runs (delete ``.repro-cache`` or set ``REPRO_CACHE_DIR`` to move
it), and a cold run can be fanned out with ``REPRO_JOBS=4``.

Run with:  python examples/design_space_exploration.py
"""

from repro import SparsityPattern
from repro.analysis.runtime import FIGURE13_ENGINE_NAMES
from repro.experiments import print_table, run_experiment
from repro.experiments.figures import figure13_spec, figure14_spec


def main() -> None:
    layer_name = "BERT-L2"
    pattern = SparsityPattern.SPARSE_2_4

    runtime_spec = figure13_spec(
        layers=[layer_name],
        engine_names=FIGURE13_ENGINE_NAMES,
        patterns=[pattern],
        max_output_tiles=4,
    )
    runtimes = run_experiment(runtime_spec)
    # Cost estimates for every named design point; the +OF variant shares the
    # silicon of its base engine, so look its costs up under the base name.
    cost_names = [name.replace("+OF", "") for name in FIGURE13_ENGINE_NAMES]
    costs = run_experiment(figure14_spec(sorted(set(cost_names))))
    cost_by_name = {row["engine"]: row for row in costs.rows}

    print(f"{layer_name}: 2:4 sparse weights, {len(runtimes)} design points "
          f"({runtimes.meta['cached']} cached, {runtimes.meta['executed']} simulated)\n")

    baseline_cycles = runtimes.rows[0]["core_cycles_scaled"]
    rows = []
    for point in runtimes:
        cost = cost_by_name[point["engine"].replace("+OF", "")]
        rows.append(
            [
                point["engine"],
                f"{point['core_cycles_scaled']:,.0f}",
                f"{baseline_cycles / point['core_cycles_scaled']:.2f}x",
                f"{cost['area_normalized']:.3f}",
                f"{cost['power_normalized']:.3f}",
                f"{cost['frequency_ghz']:.2f}",
            ]
        )
    print_table(
        "Design-space exploration (BERT-L2, 2:4 weights)",
        ["engine", "cycles", "speed-up", "norm.area", "norm.power", "fmax(GHz)"],
        rows,
    )

    print("\n(cycles are steady-state samples scaled to the full layer; area/power are")
    print(" normalised to RASA-SM; every design meets the 0.5 GHz evaluation clock)")


if __name__ == "__main__":
    main()
