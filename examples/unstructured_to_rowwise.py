#!/usr/bin/env python
"""Accelerating unstructured sparsity via the row-wise N:4 transformation.

Section III-D of the paper shows that any unstructured sparse matrix can be
covered losslessly by giving each row the tightest supported N:4 pattern,
which the VEGETA engine then executes with ``TILE_SPMM_R``.  This example:

1. prunes a weight matrix to 95 % unstructured sparsity,
2. applies the transformation and reports the per-row pattern mix,
3. runs the executable row-wise kernel and checks its result,
4. sweeps sparsity degrees and prints the expected speed-up of each hardware
   granularity class (the Figure 15 comparison).

Run with:  python examples/unstructured_to_rowwise.py
"""

import numpy as np

from repro import GemmShape, SparsityPattern, build_rowwise_spmm_kernel, transform_unstructured
from repro.analysis.granularity import GRANULARITY_LABELS, granularity_speedups
from repro.kernels.validate import reference_gemm, run_functional
from repro.sparse import spe_column_occupancy
from repro.workloads import generate_unstructured


def main() -> None:
    shape = GemmShape(m=64, n=64, k=256)
    data = generate_unstructured(shape, 0.95, seed=0)
    print(f"weight matrix {shape.m}x{shape.k} at {data.sparsity_degree:.0%} unstructured sparsity")

    # Lossless covering with per-row N:4 patterns.
    tile = transform_unstructured(data.a)
    counts = {pattern.value: count for pattern, count in tile.pattern_counts.items()}
    print(f"row patterns after covering: {counts}")
    print(f"lossless: {np.array_equal(tile.decompress(), data.a)}")
    print(f"occupied SPE columns per 16-column group: {spe_column_occupancy(tile):.1f}")

    # Execute the TILE_SPMM_R kernel and verify.
    kernel = build_rowwise_spmm_kernel(data.a, data.b)
    result = run_functional(kernel)
    reference = reference_gemm(data.a, data.b)
    print(f"row-wise kernel matches reference: {np.allclose(result, reference, atol=1e-3)}")
    print(f"TILE_SPMM_R instructions: {kernel.summary().by_opcode.get('TILE_SPMM_R', 0)}")

    # Figure 15 style comparison at a few sparsity degrees.
    print("\nexpected speed-up over a dense engine by granularity class:")
    header = f"{'sparsity':>9}" + "".join(f"{label.split(' (')[0]:>18}" for label in GRANULARITY_LABELS.values())
    print(header)
    for degree in (0.70, 0.80, 0.90, 0.95):
        sample = generate_unstructured(GemmShape(m=256, n=64, k=512), degree, seed=1)
        speedups = granularity_speedups(sample.a)
        row = f"{degree:>8.0%}" + "".join(f"{speedups[key]:>18.2f}" for key in GRANULARITY_LABELS)
        print(row)


if __name__ == "__main__":
    main()
